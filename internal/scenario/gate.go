package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro"
)

// Row is one E21 measurement row as the gate evaluator consumes it —
// the parsed form of one line of the "E21 scenario suite" table.
type Row struct {
	Scenario       string
	Backend        string
	Rerun          int
	Ops            uint64
	OpsPerSec      float64
	P50, P99, P999 time.Duration
	Conserved      string
}

// rowColumns are the table columns ParseRows requires, exactly as
// experiment E21 emits them (quantiles as integer nanoseconds so no
// consumer ever re-parses human-formatted durations). The golden
// round-trip test on bench.Doc plus TestParseRowsRoundTrip pin this
// schema: renaming a column breaks cmd/slogate loudly, not silently.
var rowColumns = []string{"scenario", "backend", "rerun", "procs", "ops", "ok-ops", "ops/s", "p50 ns", "p99 ns", "p999 ns", "conserved"}

// RowColumns returns the required E21 table header, in order.
func RowColumns() []string { return append([]string(nil), rowColumns...) }

// ParseRows decodes an E21 table (headers plus string cells, the
// shape bench.TableResult carries) into typed rows. Columns are
// resolved by name, so adding columns is compatible; removing or
// renaming one is an error.
func ParseRows(headers []string, rows [][]string) ([]Row, error) {
	col := map[string]int{}
	for i, h := range headers {
		col[h] = i
	}
	for _, want := range rowColumns {
		if _, ok := col[want]; !ok {
			return nil, fmt.Errorf("scenario: E21 table is missing column %q (have %v)", want, headers)
		}
	}
	out := make([]Row, 0, len(rows))
	for i, cells := range rows {
		get := func(name string) string { return cells[col[name]] }
		var r Row
		var err error
		r.Scenario, r.Backend, r.Conserved = get("scenario"), get("backend"), get("conserved")
		if r.Rerun, err = strconv.Atoi(get("rerun")); err != nil {
			return nil, fmt.Errorf("scenario: row %d: bad rerun %q", i, get("rerun"))
		}
		if r.Ops, err = strconv.ParseUint(get("ops"), 10, 64); err != nil {
			return nil, fmt.Errorf("scenario: row %d: bad ops %q", i, get("ops"))
		}
		if r.OpsPerSec, err = strconv.ParseFloat(get("ops/s"), 64); err != nil {
			return nil, fmt.Errorf("scenario: row %d: bad ops/s %q", i, get("ops/s"))
		}
		for _, q := range []struct {
			name string
			dst  *time.Duration
		}{{"p50 ns", &r.P50}, {"p99 ns", &r.P99}, {"p999 ns", &r.P999}} {
			ns, err := strconv.ParseInt(get(q.name), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("scenario: row %d: bad %s %q", i, q.name, get(q.name))
			}
			*q.dst = time.Duration(ns)
		}
		out = append(out, r)
	}
	return out, nil
}

// Verdict is one gate's outcome for one scenario x backend cell (or
// for a whole scenario, Backend "*", on the coverage gate).
type Verdict struct {
	Scenario, Backend string
	// Gate names the check: "slo-p50", "slo-p99", "slo-p999",
	// "variance", "conservation", "coverage", or "known-scenario"
	// (E21); "survivor-progress", "recovery", or "classification"
	// (E22, alongside the shared variance/conservation/coverage).
	Gate     string
	Observed string
	Bound    string
	OK       bool
}

// Evaluate applies every scenario's declared Gate to the parsed rows
// and returns the full verdict table, deterministically ordered
// (library scenario order, then backend, then gate name). SLO gates
// check the median across reruns; the variance gate bounds max/min
// throughput across reruns; conservation requires every row "ok";
// coverage requires at least one row for every applicable catalog
// backend of every library scenario, so a silently dropped cell fails
// the release rather than shrinking it.
func Evaluate(rows []Row) []Verdict {
	byCell := map[[2]string][]Row{}
	knownScenario := map[string]bool{}
	for _, s := range Library() {
		knownScenario[s.Name] = true
	}
	var verdicts []Verdict
	for _, r := range rows {
		if !knownScenario[r.Scenario] {
			verdicts = append(verdicts, Verdict{
				Scenario: r.Scenario, Backend: r.Backend, Gate: "known-scenario",
				Observed: "not in scenario.Library()", Bound: "declared scenario", OK: false,
			})
			continue
		}
		key := [2]string{r.Scenario, r.Backend}
		byCell[key] = append(byCell[key], r)
	}

	for _, sc := range Library() {
		// Coverage: every applicable catalog backend must have rows.
		var missing []string
		total := 0
		for _, b := range repro.Catalog() {
			if !sc.AppliesTo(b.Kind) {
				continue
			}
			total++
			if len(byCell[[2]string{sc.Name, b.Name}]) == 0 {
				missing = append(missing, b.Name)
			}
		}
		obs := fmt.Sprintf("%d/%d backends", total-len(missing), total)
		if len(missing) > 0 {
			obs += fmt.Sprintf(" (missing %v)", missing)
		}
		verdicts = append(verdicts, Verdict{
			Scenario: sc.Name, Backend: "*", Gate: "coverage",
			Observed: obs, Bound: fmt.Sprintf("%d/%d backends", total, total),
			OK: len(missing) == 0,
		})

		var backends []string
		for key := range byCell {
			if key[0] == sc.Name {
				backends = append(backends, key[1])
			}
		}
		sort.Strings(backends)
		for _, backend := range backends {
			cell := byCell[[2]string{sc.Name, backend}]
			verdicts = append(verdicts, evaluateCell(sc, backend, cell)...)
		}
	}
	return verdicts
}

// evaluateCell applies one scenario's gate to one backend's reruns.
func evaluateCell(sc Scenario, backend string, cell []Row) []Verdict {
	var out []Verdict
	add := func(gate, observed, bound string, ok bool) {
		out = append(out, Verdict{Scenario: sc.Name, Backend: backend,
			Gate: gate, Observed: observed, Bound: bound, OK: ok})
	}

	for _, slo := range []struct {
		gate  string
		bound time.Duration
		pick  func(Row) time.Duration
	}{
		{"slo-p50", sc.Gate.MaxP50, func(r Row) time.Duration { return r.P50 }},
		{"slo-p99", sc.Gate.MaxP99, func(r Row) time.Duration { return r.P99 }},
		{"slo-p999", sc.Gate.MaxP999, func(r Row) time.Duration { return r.P999 }},
	} {
		if slo.bound == 0 {
			continue
		}
		vals := make([]time.Duration, len(cell))
		for i, r := range cell {
			vals[i] = slo.pick(r)
		}
		med := median(vals)
		add(slo.gate, fmt.Sprintf("median %v", med), fmt.Sprintf("≤ %v", slo.bound), med <= slo.bound)
	}

	if sc.Gate.MaxVarianceRatio > 0 && len(cell) >= 2 {
		lo, hi := cell[0].OpsPerSec, cell[0].OpsPerSec
		for _, r := range cell[1:] {
			if r.OpsPerSec < lo {
				lo = r.OpsPerSec
			}
			if r.OpsPerSec > hi {
				hi = r.OpsPerSec
			}
		}
		ratio := hi / lo
		if lo <= 0 {
			ratio = 0 // zero-throughput rerun: fail via the bound below
		}
		add("variance", fmt.Sprintf("max/min ops/s = %.2f", ratio),
			fmt.Sprintf("≤ %.0f over %d reruns", sc.Gate.MaxVarianceRatio, len(cell)),
			lo > 0 && ratio <= sc.Gate.MaxVarianceRatio)
	}

	conservedOK := true
	for _, r := range cell {
		if r.Conserved != "ok" {
			conservedOK = false
		}
	}
	obs := "all reruns ok"
	if !conservedOK {
		obs = "conservation violated"
	}
	add("conservation", obs, "every rerun ok", conservedOK)
	return out
}

// CrashRow is one E22 measurement row as the gate evaluator consumes
// it — the parsed form of one line of the "E22 crash suite" table.
type CrashRow struct {
	Scenario    string
	Backend     string
	Rerun       int
	Ops         uint64
	OKOps       uint64
	Abandoned   uint64
	OpsPerSec   float64
	SurvivorOps uint64
	Recovery    time.Duration
	Conserved   string
	Robustness  string
}

// crashRowColumns are the E22 table columns, same contract as
// rowColumns: resolved by name, adding columns is compatible,
// removing or renaming one breaks cmd/slogate loudly.
var crashRowColumns = []string{"scenario", "backend", "rerun", "procs", "ops", "ok-ops", "abandoned", "ops/s", "survivor-ops", "recovery-ns", "conserved", "robustness"}

// CrashRowColumns returns the required E22 table header, in order.
func CrashRowColumns() []string { return append([]string(nil), crashRowColumns...) }

// ParseCrashRows decodes an E22 crash-suite table into typed rows.
func ParseCrashRows(headers []string, rows [][]string) ([]CrashRow, error) {
	col := map[string]int{}
	for i, h := range headers {
		col[h] = i
	}
	for _, want := range crashRowColumns {
		if _, ok := col[want]; !ok {
			return nil, fmt.Errorf("scenario: E22 table is missing column %q (have %v)", want, headers)
		}
	}
	out := make([]CrashRow, 0, len(rows))
	for i, cells := range rows {
		get := func(name string) string { return cells[col[name]] }
		var r CrashRow
		var err error
		r.Scenario, r.Backend = get("scenario"), get("backend")
		r.Conserved, r.Robustness = get("conserved"), get("robustness")
		if r.Rerun, err = strconv.Atoi(get("rerun")); err != nil {
			return nil, fmt.Errorf("scenario: row %d: bad rerun %q", i, get("rerun"))
		}
		for _, u := range []struct {
			name string
			dst  *uint64
		}{{"ops", &r.Ops}, {"ok-ops", &r.OKOps}, {"abandoned", &r.Abandoned}, {"survivor-ops", &r.SurvivorOps}} {
			if *u.dst, err = strconv.ParseUint(get(u.name), 10, 64); err != nil {
				return nil, fmt.Errorf("scenario: row %d: bad %s %q", i, u.name, get(u.name))
			}
		}
		if r.OpsPerSec, err = strconv.ParseFloat(get("ops/s"), 64); err != nil {
			return nil, fmt.Errorf("scenario: row %d: bad ops/s %q", i, get("ops/s"))
		}
		ns, err := strconv.ParseInt(get("recovery-ns"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("scenario: row %d: bad recovery-ns %q", i, get("recovery-ns"))
		}
		r.Recovery = time.Duration(ns)
		out = append(out, r)
	}
	return out, nil
}

// EvaluateCrash applies the E22 release gates to the parsed crash
// rows, mirroring Evaluate's shape: known-scenario and coverage
// against CrashLibrary(), then per cell survivor-progress (every
// rerun's survivors completed operations after the first crash),
// recovery (median worst-process recovery latency within the
// scenario's bound — the lease-takeover budget made observable),
// conservation (every rerun's bracket holds), classification (the
// measured rows carry the catalog's declared Robustness), and the
// shared throughput-variance methodology gate.
func EvaluateCrash(rows []CrashRow) []Verdict {
	byCell := map[[2]string][]CrashRow{}
	knownScenario := map[string]bool{}
	for _, s := range CrashLibrary() {
		knownScenario[s.Name] = true
	}
	robustness := map[string]string{}
	for _, b := range repro.Catalog() {
		robustness[b.Name] = b.Robustness
	}
	var verdicts []Verdict
	for _, r := range rows {
		if !knownScenario[r.Scenario] {
			verdicts = append(verdicts, Verdict{
				Scenario: r.Scenario, Backend: r.Backend, Gate: "known-scenario",
				Observed: "not in scenario.CrashLibrary()", Bound: "declared scenario", OK: false,
			})
			continue
		}
		key := [2]string{r.Scenario, r.Backend}
		byCell[key] = append(byCell[key], r)
	}

	for _, sc := range CrashLibrary() {
		var missing []string
		total := 0
		for _, b := range repro.Catalog() {
			if !sc.AppliesTo(b.Kind) {
				continue
			}
			total++
			if len(byCell[[2]string{sc.Name, b.Name}]) == 0 {
				missing = append(missing, b.Name)
			}
		}
		obs := fmt.Sprintf("%d/%d backends", total-len(missing), total)
		if len(missing) > 0 {
			obs += fmt.Sprintf(" (missing %v)", missing)
		}
		verdicts = append(verdicts, Verdict{
			Scenario: sc.Name, Backend: "*", Gate: "coverage",
			Observed: obs, Bound: fmt.Sprintf("%d/%d backends", total, total),
			OK: len(missing) == 0,
		})

		var backends []string
		for key := range byCell {
			if key[0] == sc.Name {
				backends = append(backends, key[1])
			}
		}
		sort.Strings(backends)
		for _, backend := range backends {
			cell := byCell[[2]string{sc.Name, backend}]
			verdicts = append(verdicts, evaluateCrashCell(sc, backend, cell, robustness)...)
		}
	}
	return verdicts
}

// evaluateCrashCell applies the crash gates to one backend's reruns.
func evaluateCrashCell(sc Scenario, backend string, cell []CrashRow, robustness map[string]string) []Verdict {
	var out []Verdict
	add := func(gate, observed, bound string, ok bool) {
		out = append(out, Verdict{Scenario: sc.Name, Backend: backend,
			Gate: gate, Observed: observed, Bound: bound, OK: ok})
	}

	minSurvivor := cell[0].SurvivorOps
	for _, r := range cell[1:] {
		if r.SurvivorOps < minSurvivor {
			minSurvivor = r.SurvivorOps
		}
	}
	add("survivor-progress", fmt.Sprintf("min %d survivor ops", minSurvivor),
		"> 0 in every rerun", minSurvivor > 0)

	if sc.Gate.MaxRecovery > 0 {
		recoveries := make([]time.Duration, len(cell))
		positive := true
		for i, r := range cell {
			recoveries[i] = r.Recovery
			if r.Recovery <= 0 {
				positive = false
			}
		}
		med := median(recoveries)
		add("recovery", fmt.Sprintf("median %v", med),
			fmt.Sprintf("> 0 and ≤ %v", sc.Gate.MaxRecovery),
			positive && med <= sc.Gate.MaxRecovery)
	}

	conservedOK := true
	for _, r := range cell {
		if r.Conserved != "ok" {
			conservedOK = false
		}
	}
	obs := "all reruns ok"
	if !conservedOK {
		obs = "conservation bracket violated"
	}
	add("conservation", obs, "every rerun ok", conservedOK)

	want, known := robustness[backend]
	labelOK := known
	got := ""
	for _, r := range cell {
		got = r.Robustness
		if r.Robustness != want {
			labelOK = false
		}
	}
	add("classification", got, fmt.Sprintf("catalog says %q", want), labelOK)

	if sc.Gate.MaxVarianceRatio > 0 && len(cell) >= 2 {
		lo, hi := cell[0].OpsPerSec, cell[0].OpsPerSec
		for _, r := range cell[1:] {
			if r.OpsPerSec < lo {
				lo = r.OpsPerSec
			}
			if r.OpsPerSec > hi {
				hi = r.OpsPerSec
			}
		}
		ratio := hi / lo
		if lo <= 0 {
			ratio = 0
		}
		add("variance", fmt.Sprintf("max/min ops/s = %.2f", ratio),
			fmt.Sprintf("≤ %.0f over %d reruns", sc.Gate.MaxVarianceRatio, len(cell)),
			lo > 0 && ratio <= sc.Gate.MaxVarianceRatio)
	}
	return out
}

// AdaptiveRow is one E23 measurement row as the gate evaluator
// consumes it — the parsed form of one line of the "E23 adaptive
// suite" table. Unlike E21's per-run rows, E23 emits one row per
// PHASE, because the claim under test is per-regime: the adaptive
// backend must track the best fixed rung in every phase, not just on
// the whole-run average (where a bad rung in one phase could hide
// behind a great one in another).
type AdaptiveRow struct {
	Scenario   string
	Backend    string
	Rerun      int
	Phase      string
	Procs      int
	Ops        uint64
	OpsPerSec  float64
	Rung       string // rung at end of phase; "fixed" for non-adaptive rows
	Migrations uint64 // completed migrations during this phase
	InRung     time.Duration
	Conserved  string
}

// adaptiveRowColumns are the E23 table columns, same contract as
// rowColumns: resolved by name, adding columns is compatible,
// removing or renaming one breaks cmd/slogate loudly.
var adaptiveRowColumns = []string{"scenario", "backend", "rerun", "phase", "procs", "ops", "ops/s", "rung", "migrations", "in-rung-ns", "conserved"}

// AdaptiveRowColumns returns the required E23 table header, in order.
func AdaptiveRowColumns() []string { return append([]string(nil), adaptiveRowColumns...) }

// ParseAdaptiveRows decodes an E23 adaptive-suite table into typed rows.
func ParseAdaptiveRows(headers []string, rows [][]string) ([]AdaptiveRow, error) {
	col := map[string]int{}
	for i, h := range headers {
		col[h] = i
	}
	for _, want := range adaptiveRowColumns {
		if _, ok := col[want]; !ok {
			return nil, fmt.Errorf("scenario: E23 table is missing column %q (have %v)", want, headers)
		}
	}
	out := make([]AdaptiveRow, 0, len(rows))
	for i, cells := range rows {
		get := func(name string) string { return cells[col[name]] }
		var r AdaptiveRow
		var err error
		r.Scenario, r.Backend, r.Phase = get("scenario"), get("backend"), get("phase")
		r.Rung, r.Conserved = get("rung"), get("conserved")
		if r.Rerun, err = strconv.Atoi(get("rerun")); err != nil {
			return nil, fmt.Errorf("scenario: row %d: bad rerun %q", i, get("rerun"))
		}
		if r.Procs, err = strconv.Atoi(get("procs")); err != nil {
			return nil, fmt.Errorf("scenario: row %d: bad procs %q", i, get("procs"))
		}
		if r.Ops, err = strconv.ParseUint(get("ops"), 10, 64); err != nil {
			return nil, fmt.Errorf("scenario: row %d: bad ops %q", i, get("ops"))
		}
		if r.OpsPerSec, err = strconv.ParseFloat(get("ops/s"), 64); err != nil {
			return nil, fmt.Errorf("scenario: row %d: bad ops/s %q", i, get("ops/s"))
		}
		if r.Migrations, err = strconv.ParseUint(get("migrations"), 10, 64); err != nil {
			return nil, fmt.Errorf("scenario: row %d: bad migrations %q", i, get("migrations"))
		}
		ns, err := strconv.ParseInt(get("in-rung-ns"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("scenario: row %d: bad in-rung-ns %q", i, get("in-rung-ns"))
		}
		r.InRung = time.Duration(ns)
		out = append(out, r)
	}
	return out, nil
}

// adaptiveSlack returns the within-best-rung throughput floor for one
// phase, keyed off the measured per-phase op count and the measuring
// host's CPU count so the gate self-calibrates to what the run could
// express: at full depth (≥1000 ops per phase) on a host with ≥4
// CPUs — where the contention regimes the ladder targets actually
// exist — the adaptive backend must hold ≥90% of the best fixed
// rung's median. Quick smokes (dozens of ops, goroutine setup
// dominates) and small hosts (goroutines run in sequential bursts, so
// "best fixed rung" degenerates to whichever rung has the least
// machinery) gate at a loose sanity floor instead, the same
// philosophy as E21's 1-core CI bounds.
func adaptiveSlack(phaseOps uint64, ncpu int) (float64, string) {
	if phaseOps >= 1000 && ncpu >= 4 {
		return 0.90, "≥ 0.90x best fixed rung"
	}
	return 0.20, "≥ 0.20x best fixed rung (smoke floor)"
}

// EvaluateAdaptive applies the E23 release gates to the parsed
// per-phase rows: known-scenario and coverage against
// AdaptiveLibrary() x AdaptiveLadders(), then per (scenario, ladder)
// the within-slack gate on EVERY phase (median adaptive ops/s across
// reruns against the best fixed rung's median — tracking the best rung
// per regime is the whole claim), migration sanity (the adaptive
// backend actually moved, and did not thrash: total completed
// migrations per rerun in [1, 200]; fixed rows must report exactly 0,
// or the "fixed" baseline isn't one), and conservation on every row.
// The ncpu argument is the measuring host's CPU count from the
// document's provenance stamp, which picks the within-slack tier.
func EvaluateAdaptive(rows []AdaptiveRow, ncpu int) []Verdict {
	knownScenario := map[string]bool{}
	for _, s := range AdaptiveLibrary() {
		knownScenario[s.Name] = true
	}
	// byCell: (scenario, backend) -> rows; phases stay mixed and are
	// re-split per gate.
	byCell := map[[2]string][]AdaptiveRow{}
	var verdicts []Verdict
	for _, r := range rows {
		if !knownScenario[r.Scenario] {
			verdicts = append(verdicts, Verdict{
				Scenario: r.Scenario, Backend: r.Backend, Gate: "known-scenario",
				Observed: "not in scenario.AdaptiveLibrary()", Bound: "declared scenario", OK: false,
			})
			continue
		}
		byCell[[2]string{r.Scenario, r.Backend}] = append(byCell[[2]string{r.Scenario, r.Backend}], r)
	}

	for _, sc := range AdaptiveLibrary() {
		for _, ladder := range AdaptiveLadders() {
			if !sc.AppliesTo(ladder.Kind) {
				continue
			}
			// Coverage: the adaptive backend and every fixed rung of its
			// ladder must have rows — a dropped rung silently weakens
			// "within slack of the BEST fixed rung".
			want := append([]string{ladder.Adaptive}, ladder.Fixed...)
			var missing []string
			for _, b := range want {
				if len(byCell[[2]string{sc.Name, b}]) == 0 {
					missing = append(missing, b)
				}
			}
			obs := fmt.Sprintf("%d/%d ladder backends", len(want)-len(missing), len(want))
			if len(missing) > 0 {
				obs += fmt.Sprintf(" (missing %v)", missing)
			}
			verdicts = append(verdicts, Verdict{
				Scenario: sc.Name, Backend: ladder.Adaptive, Gate: "coverage",
				Observed: obs, Bound: fmt.Sprintf("%d/%d ladder backends", len(want), len(want)),
				OK: len(missing) == 0,
			})
			if len(missing) > 0 {
				continue
			}
			verdicts = append(verdicts, evaluateLadder(sc, ladder, byCell, ncpu)...)
		}
	}

	// Conservation over every known-scenario row, one verdict per
	// (scenario, backend) cell, deterministic order.
	var keys [][2]string
	for key := range byCell {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		conservedOK := true
		for _, r := range byCell[key] {
			if r.Conserved != "ok" {
				conservedOK = false
			}
		}
		obs := "all rows ok"
		if !conservedOK {
			obs = "conservation violated"
		}
		verdicts = append(verdicts, Verdict{Scenario: key[0], Backend: key[1],
			Gate: "conservation", Observed: obs, Bound: "every row ok", OK: conservedOK})
	}
	return verdicts
}

// evaluateLadder applies the per-phase within-slack gate and the
// migration-sanity gates to one (scenario, ladder) pair whose coverage
// is complete.
func evaluateLadder(sc Scenario, ladder AdaptiveLadder, byCell map[[2]string][]AdaptiveRow, ncpu int) []Verdict {
	var out []Verdict

	// medianPhaseRate: median ops/s across reruns for one backend in
	// one phase (and the phase's op count, for slack calibration).
	medianPhaseRate := func(backend, phase string) (float64, uint64) {
		var rates []float64
		var ops uint64
		for _, r := range byCell[[2]string{sc.Name, backend}] {
			if r.Phase == phase {
				rates = append(rates, r.OpsPerSec)
				ops = r.Ops
			}
		}
		sort.Float64s(rates)
		if len(rates) == 0 {
			return 0, 0
		}
		return rates[len(rates)/2], ops
	}

	for _, ph := range sc.Phases {
		adaptiveMed, phaseOps := medianPhaseRate(ladder.Adaptive, ph.Name)
		best, bestRung := 0.0, ""
		for _, fixed := range ladder.Fixed {
			if med, _ := medianPhaseRate(fixed, ph.Name); med > best {
				best, bestRung = med, fixed
			}
		}
		slack, bound := adaptiveSlack(phaseOps, ncpu)
		ok := best > 0 && adaptiveMed >= slack*best
		out = append(out, Verdict{Scenario: sc.Name, Backend: ladder.Adaptive,
			Gate: "within-slack/" + ph.Name,
			Observed: fmt.Sprintf("%.2fx best (%s %.0f ops/s, adaptive %.0f)",
				safeRatio(adaptiveMed, best), bestRung, best, adaptiveMed),
			Bound: bound, OK: ok})
	}

	// Migration sanity: per rerun, the adaptive backend's total across
	// phases must show real movement without thrashing.
	perRerun := map[int]uint64{}
	for _, r := range byCell[[2]string{sc.Name, ladder.Adaptive}] {
		perRerun[r.Rerun] += r.Migrations
	}
	lo, hi, first := uint64(0), uint64(0), true
	for _, m := range perRerun {
		if first || m < lo {
			lo = m
		}
		if first || m > hi {
			hi = m
		}
		first = false
	}
	out = append(out, verdictRow(sc.Name, ladder.Adaptive, "migration-sanity",
		fmt.Sprintf("%d..%d migrations per rerun", lo, hi),
		"in [1, 200] every rerun", !first && lo >= 1 && hi <= 200))

	for _, fixed := range ladder.Fixed {
		var stray uint64
		for _, r := range byCell[[2]string{sc.Name, fixed}] {
			stray += r.Migrations
		}
		out = append(out, verdictRow(sc.Name, fixed, "fixed-baseline",
			fmt.Sprintf("%d migrations", stray), "exactly 0", stray == 0))
	}
	return out
}

// verdictRow builds one Verdict for the ladder gates above.
func verdictRow(scenario, backend, gate, observed, bound string, ok bool) Verdict {
	return Verdict{Scenario: scenario, Backend: backend, Gate: gate,
		Observed: observed, Bound: bound, OK: ok}
}

// safeRatio divides, mapping a zero denominator to 0.
func safeRatio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// median returns the middle element (upper middle on even counts).
func median(vals []time.Duration) time.Duration {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
