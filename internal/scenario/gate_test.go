package scenario

import (
	"strings"
	"testing"
	"time"

	"repro"
)

// fixtureRows synthesizes a fully covered, gate-passing E21 result:
// two reruns per scenario x applicable backend, microsecond-scale
// quantiles, near-identical throughput, conserved.
func fixtureRows() []Row {
	var rows []Row
	for _, sc := range Library() {
		for _, b := range repro.Catalog() {
			if !sc.AppliesTo(b.Kind) {
				continue
			}
			for rerun := 0; rerun < 2; rerun++ {
				rows = append(rows, Row{
					Scenario: sc.Name, Backend: b.Name, Rerun: rerun,
					Ops: 2400, OpsPerSec: 100000 + float64(rerun)*1000,
					P50: 2 * time.Microsecond, P99: 40 * time.Microsecond,
					P999: 400 * time.Microsecond, Conserved: "ok",
				})
			}
		}
	}
	return rows
}

// failures filters the verdicts down to the failed ones, rendered as
// "scenario/backend gate" strings for matching.
func failures(vs []Verdict) []string {
	var out []string
	for _, v := range vs {
		if !v.OK {
			out = append(out, v.Scenario+"/"+v.Backend+" "+v.Gate)
		}
	}
	return out
}

func TestEvaluatePass(t *testing.T) {
	vs := Evaluate(fixtureRows())
	if got := failures(vs); len(got) != 0 {
		t.Fatalf("passing fixture failed gates: %v", got)
	}
	// Every scenario must contribute a coverage verdict plus per-cell
	// SLO/variance/conservation verdicts.
	gates := map[string]int{}
	for _, v := range vs {
		gates[v.Gate]++
	}
	for _, g := range []string{"coverage", "slo-p50", "slo-p99", "slo-p999", "variance", "conservation"} {
		if gates[g] == 0 {
			t.Fatalf("no %q verdicts emitted (got %v)", g, gates)
		}
	}
	if gates["coverage"] != len(Library()) {
		t.Fatalf("coverage verdicts = %d, want one per scenario (%d)", gates["coverage"], len(Library()))
	}
}

func TestEvaluateSLOFail(t *testing.T) {
	rows := fixtureRows()
	// Push one cell's p99 over its scenario's bound on both reruns
	// (the SLO gate checks the median, so one bad rerun must NOT
	// trip it — that's variance's job).
	bad := 0
	for i := range rows {
		if rows[i].Scenario == "steady-mixed" && rows[i].Backend == "stack/treiber" {
			rows[i].P99 = 2 * time.Second
			bad++
		}
	}
	if bad != 2 {
		t.Fatalf("fixture drifted: %d steady-mixed/stack/treiber rows", bad)
	}
	got := failures(Evaluate(rows))
	if len(got) != 1 || got[0] != "steady-mixed/stack/treiber slo-p99" {
		t.Fatalf("want exactly the slo-p99 failure, got %v", got)
	}
}

func TestEvaluateSLOMedianToleratesOneBadRerun(t *testing.T) {
	rows := fixtureRows()
	// Only one of the two reruns spikes: the median (upper middle of
	// two) picks the spike... so use three reruns where the median is
	// clean, and check no SLO failure.
	extra := Row{Scenario: "steady-mixed", Backend: "stack/treiber", Rerun: 2,
		Ops: 2400, OpsPerSec: 101000, P50: 2 * time.Microsecond,
		P99: 40 * time.Microsecond, P999: 400 * time.Microsecond, Conserved: "ok"}
	rows = append(rows, extra)
	for i := range rows {
		if rows[i].Scenario == "steady-mixed" && rows[i].Backend == "stack/treiber" && rows[i].Rerun == 0 {
			rows[i].P99 = 2 * time.Second // one noisy rerun of three
		}
	}
	if got := failures(Evaluate(rows)); len(got) != 0 {
		t.Fatalf("median SLO tripped on a single noisy rerun: %v", got)
	}
}

func TestEvaluateVarianceFail(t *testing.T) {
	rows := fixtureRows()
	for i := range rows {
		if rows[i].Scenario == "zipf-hot" && rows[i].Backend == "set/hashset" && rows[i].Rerun == 1 {
			rows[i].OpsPerSec = rows[i].OpsPerSec / 100 // 100x swing
		}
	}
	got := failures(Evaluate(rows))
	if len(got) != 1 || got[0] != "zipf-hot/set/hashset variance" {
		t.Fatalf("want exactly the variance failure, got %v", got)
	}
}

func TestEvaluateConservationFail(t *testing.T) {
	rows := fixtureRows()
	for i := range rows {
		if rows[i].Scenario == "churn-slow" && rows[i].Backend == "queue/sensitive" && rows[i].Rerun == 0 {
			rows[i].Conserved = "FAIL: produced 100 != consumed 99 + drained 0"
		}
	}
	got := failures(Evaluate(rows))
	if len(got) != 1 || got[0] != "churn-slow/queue/sensitive conservation" {
		t.Fatalf("want exactly the conservation failure, got %v", got)
	}
}

func TestEvaluateCoverageFail(t *testing.T) {
	// Dropping every row of one backend in one scenario must fail
	// that scenario's coverage gate, naming the hole.
	var rows []Row
	for _, r := range fixtureRows() {
		if r.Scenario == "solo-storm" && r.Backend == "set/harris" {
			continue
		}
		rows = append(rows, r)
	}
	got := failures(Evaluate(rows))
	if len(got) != 1 || got[0] != "solo-storm/* coverage" {
		t.Fatalf("want exactly the coverage failure, got %v", got)
	}
	for _, v := range Evaluate(rows) {
		if v.Gate == "coverage" && v.Scenario == "solo-storm" && !strings.Contains(v.Observed, "set/harris") {
			t.Fatalf("coverage verdict does not name the missing backend: %q", v.Observed)
		}
	}
}

func TestEvaluateUnknownScenario(t *testing.T) {
	rows := append(fixtureRows(), Row{Scenario: "who-dis", Backend: "stack/treiber",
		Ops: 1, OpsPerSec: 1, Conserved: "ok"})
	got := failures(Evaluate(rows))
	if len(got) != 1 || got[0] != "who-dis/stack/treiber known-scenario" {
		t.Fatalf("want exactly the known-scenario failure, got %v", got)
	}
}

func TestParseRowsRoundTrip(t *testing.T) {
	headers := RowColumns()
	cells := [][]string{
		{"steady-mixed", "stack/treiber", "1", "8", "2400", "2350", "123456.789", "2000", "40000", "400000", "ok"},
	}
	rows, err := ParseRows(headers, cells)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Scenario != "steady-mixed" || r.Backend != "stack/treiber" || r.Rerun != 1 ||
		r.Ops != 2400 || r.OpsPerSec != 123456.789 ||
		r.P50 != 2*time.Microsecond || r.P99 != 40*time.Microsecond ||
		r.P999 != 400*time.Microsecond || r.Conserved != "ok" {
		t.Fatalf("round trip drifted: %+v", r)
	}
}

func TestParseRowsRejectsMissingColumn(t *testing.T) {
	headers := RowColumns()[:5] // drop the tail columns
	if _, err := ParseRows(headers, nil); err == nil {
		t.Fatal("ParseRows accepted a table missing required columns")
	}
}
