package scenario

import (
	"time"

	"repro"
)

// KeyDist selects how a phase draws keys/values from its key range.
type KeyDist int

const (
	// Uniform draws keys uniformly over [0, KeyRange).
	Uniform KeyDist = iota
	// Zipfian draws keys Zipf-skewed: rank 0 is the hottest key.
	Zipfian
)

// Phase is one phase of a scenario: a fixed per-process operation
// budget under one contention/mix/arrival regime. Operation counts
// are budgets, not durations, so the generated streams are identical
// across reruns and machines.
type Phase struct {
	// Name labels the phase in docs and debugging output.
	Name string
	// Procs is the number of concurrently active processes (pids
	// [0, Procs)).
	Procs int
	// Ops is the operation budget per active process (before the
	// runner's Scale option).
	Ops int

	// Write and Erase are the op-class fractions; the remainder is
	// reads. Classes map onto each kind's op codes: write =
	// push/enqueue/pushL|R/add, erase = pop/dequeue/popL|R/remove,
	// read = contains (sets) or the kind's consume op where no pure
	// read exists. Ignored when Producers > 0.
	Write, Erase float64
	// Producers, when > 0, splits the phase into roles instead of a
	// mix: pids < Producers issue writes only, the rest erases only.
	Producers int

	// KeyRange bounds the keys/values drawn (0 = 1024); Dist picks
	// the distribution, with ZipfS the Zipfian skew (0 = 1.2).
	KeyRange int
	Dist     KeyDist
	ZipfS    float64

	// Interval, when > 0, makes arrivals open-loop: each process
	// issues Burst ops (0 = 64) at every Interval tick and idles in
	// between; a backlogged process skips the idle, never the ops.
	// Closed-loop (back-to-back) when 0. The runner scales Interval
	// alongside Ops so quick runs keep the burst shape.
	Interval time.Duration
	Burst    int

	// SlowPids marks the highest SlowPids pids of the phase as slow:
	// after every SlowEvery ops (0 = 64) they pause for SlowPause
	// (0 = 200us). Models a process losing its processor mid-stream.
	SlowPids  int
	SlowEvery int
	SlowPause time.Duration

	// CrashPids makes the highest CrashPids pids stop permanently
	// after CrashFrac (0 = 0.5) of their budget — the paper's §5
	// crash model lifted to the scenario level: a crashed process
	// takes no further steps, and the object must stay consistent
	// for the survivors (the conservation check still must pass).
	CrashPids int
	CrashFrac float64

	// CrashMidOp upgrades the crash from "stop between operations"
	// to the §5 mid-operation crash on backends with an Abandon seam
	// (the flat-combining family): the crashing process publishes
	// its next update without collecting the response and never
	// takes another step, leaving a pending request a combiner may
	// or may not serve. Backends without the seam fall back to
	// stopping between operations — the honest model for lock-free
	// code, where a process holds no object state between its atomic
	// steps. Abandoned operations relax the conservation check into
	// a bracket (see Result.Abandoned).
	CrashMidOp bool
	// CrashCombiner additionally arms the one-shot combiner crash
	// for the crashing pids (Ops.ArmCrash, flat-combining backends
	// only): the pid's next combining pass dies mid-pass with the
	// lease held and CONTENTION raised — the worst §5 failure — and
	// the survivors must recover via the heartbeat lease takeover.
	CrashCombiner bool
}

// withDefaults resolves the zero-value knobs.
func (p Phase) withDefaults() Phase {
	if p.KeyRange == 0 {
		p.KeyRange = 1024
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.2
	}
	if p.Burst == 0 {
		p.Burst = 64
	}
	if p.SlowEvery == 0 {
		p.SlowEvery = 64
	}
	if p.SlowPause == 0 {
		p.SlowPause = 200 * time.Microsecond
	}
	if p.CrashFrac == 0 {
		p.CrashFrac = 0.5
	}
	return p
}

// Gate declares a scenario's release thresholds, evaluated by
// Evaluate (cmd/slogate) over the E21 rows. Zero fields are ungated.
type Gate struct {
	// MaxP50/MaxP99/MaxP999 bound the scenario's per-op latency
	// quantiles, checked against the median across reruns (one noisy
	// rerun is the variance gate's business, not the SLO's).
	MaxP50, MaxP99, MaxP999 time.Duration
	// MaxVarianceRatio bounds max/min throughput across the reruns
	// of one scenario x backend cell. The op streams are identical
	// across reruns, so this ratio is pure timing noise — the
	// methodology gate that makes the SLO numbers trustworthy.
	MaxVarianceRatio float64
	// MaxRecovery bounds the crash-recovery latency (E22 crash
	// scenarios only): the nanoseconds from a crash to each
	// survivor's first completed operation after it, worst process,
	// checked against the median across reruns. The bound is the
	// scenario-level form of the lease budget: a crashed combiner
	// must be deposed and the survivors moving again within it.
	// Zero = ungated.
	MaxRecovery time.Duration
}

// defaultGate is deliberately loose: the gates must hold on a noisy,
// 1-core shared CI runner in quick mode. They exist to catch order-
// of-magnitude regressions (a lost wakeup, an accidental O(n) hot
// path, a spin turned sleep), not single-digit percent drift — the
// BENCH_E21.json trajectory is where fine-grained drift shows.
var defaultGate = Gate{
	MaxP50:           50 * time.Millisecond,
	MaxP99:           250 * time.Millisecond,
	MaxP999:          time.Second,
	MaxVarianceRatio: 25,
}

// Scenario is one declarative workload: phases over one object
// instance, a fixed seed, the catalog kinds it applies to, and its
// release gate.
type Scenario struct {
	// Name identifies the scenario in rows, gates, and docs.
	Name string
	// Desc is the one-line description the docs table quotes.
	Desc string
	// Kinds lists the applicable catalog kinds (nil = all four).
	Kinds []string
	// Seed determines every process's op stream.
	Seed uint64
	// Gate is the scenario's release thresholds.
	Gate Gate
	// Phases run in order against one shared object instance.
	Phases []Phase
}

// AppliesTo reports whether the scenario runs against kind.
func (s Scenario) AppliesTo(kind string) bool {
	if len(s.Kinds) == 0 {
		return true
	}
	for _, k := range s.Kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// MaxProcs returns the largest phase process count.
func (s Scenario) MaxProcs() int {
	max := 1
	for _, p := range s.Phases {
		if p.Procs > max {
			max = p.Procs
		}
	}
	return max
}

// allKinds spells "every kind" in the docs table; Kinds stays nil.
var setOnly = []string{repro.KindSet}

// Library returns the standard scenario suite, in the order E21 runs
// it. Names, kinds, and phase counts are pinned against the
// EXPERIMENTS.md scenario table by TestScenariosMatchDocs.
func Library() []Scenario {
	return []Scenario{
		{
			Name: "steady-mixed",
			Desc: "one steady phase of the balanced mixed workload — the baseline every other scenario perturbs",
			Seed: 0x5ced0001,
			Gate: defaultGate,
			Phases: []Phase{
				{Name: "steady", Procs: 8, Ops: 4000, Write: 0.45, Erase: 0.45},
			},
		},
		{
			Name:  "read-mostly",
			Desc:  "90/9/1 membership workload — wait-free Contains should dominate the latency profile",
			Kinds: setOnly,
			Seed:  0x5ced0002,
			Gate:  defaultGate,
			Phases: []Phase{
				{Name: "reads", Procs: 8, Ops: 4000, Write: 0.09, Erase: 0.01},
			},
		},
		{
			Name: "bursty",
			Desc: "open-loop bursts: 64-op volleys on a fixed arrival clock, idle gaps between — queueing at the object, not in it",
			Seed: 0x5ced0003,
			Gate: defaultGate,
			Phases: []Phase{
				{Name: "bursts", Procs: 8, Ops: 4000, Write: 0.45, Erase: 0.45,
					Interval: 2 * time.Millisecond, Burst: 64},
			},
		},
		{
			Name:  "zipf-hot",
			Desc:  "Zipf(1.2) hot keys over a 4096-key range — a handful of keys soak the update traffic",
			Kinds: setOnly,
			Seed:  0x5ced0004,
			Gate:  defaultGate,
			Phases: []Phase{
				{Name: "hot-keys", Procs: 8, Ops: 4000, Write: 0.25, Erase: 0.25,
					KeyRange: 4096, Dist: Zipfian, ZipfS: 1.2},
			},
		},
		{
			Name: "phase-flip",
			Desc: "write-heavy fill, erase-heavy drain, fill again — the regime flips mid-run, twice",
			Seed: 0x5ced0005,
			Gate: defaultGate,
			Phases: []Phase{
				{Name: "fill", Procs: 8, Ops: 2000, Write: 0.80, Erase: 0.10},
				{Name: "drain", Procs: 8, Ops: 2000, Write: 0.10, Erase: 0.80},
				{Name: "refill", Procs: 8, Ops: 2000, Write: 0.80, Erase: 0.10},
			},
		},
		{
			Name:  "producer-consumer",
			Desc:  "2 producers feed 6 consumers — role imbalance instead of a mix; consumers mostly find it empty",
			Kinds: []string{repro.KindStack, repro.KindQueue, repro.KindDeque},
			Seed:  0x5ced0006,
			Gate:  defaultGate,
			Phases: []Phase{
				{Name: "pipeline", Procs: 8, Ops: 4000, Producers: 2},
			},
		},
		{
			Name: "solo-storm",
			Desc: "contention-free warmup, 8-proc storm, solo cooldown — E6's schedule as a first-class scenario",
			Seed: 0x5ced0007,
			Gate: defaultGate,
			Phases: []Phase{
				{Name: "solo-warm", Procs: 1, Ops: 3000, Write: 0.45, Erase: 0.45},
				{Name: "storm", Procs: 8, Ops: 3000, Write: 0.45, Erase: 0.45},
				{Name: "solo-cool", Procs: 1, Ops: 3000, Write: 0.45, Erase: 0.45},
			},
		},
		{
			Name: "churn-slow",
			Desc: "update churn with 2 slow processes, then 2 of 8 crash mid-phase — survivors must stay conserved",
			Seed: 0x5ced0008,
			Gate: defaultGate,
			Phases: []Phase{
				{Name: "slow-churn", Procs: 8, Ops: 3000, Write: 0.45, Erase: 0.45,
					SlowPids: 2, SlowEvery: 64, SlowPause: 200 * time.Microsecond},
				{Name: "crash", Procs: 8, Ops: 3000, Write: 0.45, Erase: 0.45,
					CrashPids: 2, CrashFrac: 0.5},
			},
		},
	}
}

// ByName resolves a library scenario.
func ByName(name string) (Scenario, bool) {
	for _, s := range Library() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// defaultCrashGate gates the crash scenarios: survivor progress and
// conservation are absolute (checked by EvaluateCrash regardless);
// the recovery bound is loose for the same 1-core shared CI runner
// reason as defaultGate — it exists to catch a wedged takeover (a
// survivor spinning forever on a dead combiner's lease), not to
// benchmark the steal latency.
var defaultCrashGate = Gate{
	MaxVarianceRatio: 25,
	MaxRecovery:      2 * time.Second,
}

// CrashLibrary returns the E22 crash-injection suite, in run order —
// separate from Library() so the E21 latency rows never carry crash
// noise. Every scenario keeps pid 0 crash-free (crashes always take
// the highest pids), and no phase reuses a previously crashed pid: a
// §5 crashed process never takes another step, drain and verification
// included. Two structural choices make the gates deterministic on a
// 1-core runner: the crashing phases run open-loop (the shared
// arrival clock encourages survivors and crashers to overlap), and
// every scenario ends with a survivor-only phase — those operations
// run strictly after every crash, so survivor progress and a recorded
// recovery latency are properties of the object, never of goroutine
// spawn order. Names, kinds, and phase counts are pinned against the
// EXPERIMENTS.md crash table by TestScenariosMatchDocs.
func CrashLibrary() []Scenario {
	return []Scenario{
		{
			Name: "mid-op-storm",
			Desc: "3 of 8 processes crash mid-operation at 40% of their budget, then the survivors run on — abandoned requests bracket conservation",
			Seed: 0x5ced1001,
			Gate: defaultCrashGate,
			Phases: []Phase{
				{Name: "storm", Procs: 8, Ops: 3000, Write: 0.45, Erase: 0.45,
					Interval: 2 * time.Millisecond, Burst: 32,
					CrashPids: 3, CrashFrac: 0.4, CrashMidOp: true},
				{Name: "aftermath", Procs: 5, Ops: 1500, Write: 0.45, Erase: 0.45},
			},
		},
		{
			Name: "combiner-crash",
			Desc: "2 of 8 crash with the combiner crash armed — a combining pass dies lease-held and survivors must steal the lease to run on",
			Seed: 0x5ced1002,
			Gate: defaultCrashGate,
			Phases: []Phase{
				{Name: "combiner", Procs: 8, Ops: 3000, Write: 0.45, Erase: 0.45,
					Interval: 2 * time.Millisecond, Burst: 32,
					CrashPids: 2, CrashFrac: 0.5, CrashMidOp: true, CrashCombiner: true},
				{Name: "aftermath", Procs: 6, Ops: 1500, Write: 0.45, Erase: 0.45},
			},
		},
		{
			Name: "crash-storm",
			Desc: "half the processes crash mid-operation at 30%, then the 4 survivors run a full phase alone",
			Seed: 0x5ced1003,
			Gate: defaultCrashGate,
			Phases: []Phase{
				{Name: "storm", Procs: 8, Ops: 2000, Write: 0.45, Erase: 0.45,
					Interval: 2 * time.Millisecond, Burst: 32,
					CrashPids: 4, CrashFrac: 0.3, CrashMidOp: true},
				{Name: "survivors", Procs: 4, Ops: 2000, Write: 0.45, Erase: 0.45},
			},
		},
	}
}

// CrashByName resolves a crash-suite scenario.
func CrashByName(name string) (Scenario, bool) {
	for _, s := range CrashLibrary() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// AdaptiveLadder pairs one adaptive meta-backend with its fixed rungs,
// bottom first — the comparison set E23 measures and gates: in every
// phase the adaptive backend must stay within the gate's slack of the
// BEST fixed rung, which is what "adapting" means operationally.
type AdaptiveLadder struct {
	Kind     string
	Adaptive string
	Fixed    []string
}

// AdaptiveLadders returns the three ladders, in catalog kind order.
// The set ladder's cow rung is compared against set/non-blocking (the
// retrying strong form of the abortable list, which is exactly how the
// adaptive set drives its cow rung) rather than the weak set/abortable.
func AdaptiveLadders() []AdaptiveLadder {
	return []AdaptiveLadder{
		{Kind: repro.KindStack, Adaptive: "stack/adaptive",
			Fixed: []string{"stack/sensitive", "stack/combining"}},
		{Kind: repro.KindQueue, Adaptive: "queue/adaptive",
			Fixed: []string{"queue/sensitive", "queue/combining", "queue/sharded"}},
		{Kind: repro.KindSet, Adaptive: "set/adaptive",
			Fixed: []string{"set/non-blocking", "set/harris", "set/hashset"}},
	}
}

// adaptiveKinds lists the kinds with an adaptive meta-backend; the
// deque ladder has a single rung, so there is nothing to adapt.
var adaptiveKinds = []string{repro.KindStack, repro.KindQueue, repro.KindSet}

// AdaptiveLibrary returns the E23 phase-shift suite: scenarios whose
// regimes sweep an adaptive ladder up and back down within one run.
// Separate from Library() so the E21 rows never carry the fixed-rung
// comparison cells. Names, kinds, and phase counts are pinned against
// the EXPERIMENTS.md table by TestScenariosMatchDocs.
func AdaptiveLibrary() []Scenario {
	return []Scenario{
		{
			Name:  "contention-wave",
			Desc:  "solo calm, 8-process storm, write-heavy key growth, solo erase-heavy cooldown — contention and size sweep the whole ladder up and back down",
			Kinds: adaptiveKinds,
			Seed:  0x5ced2001,
			Gate:  defaultGate,
			Phases: []Phase{
				{Name: "solo-calm", Procs: 1, Ops: 4000, Write: 0.45, Erase: 0.45, KeyRange: 32},
				{Name: "storm", Procs: 8, Ops: 4000, Write: 0.45, Erase: 0.45, KeyRange: 64},
				{Name: "grow", Procs: 8, Ops: 4000, Write: 0.80, Erase: 0.10, KeyRange: 4096},
				{Name: "solo-cool", Procs: 1, Ops: 4000, Write: 0.10, Erase: 0.80, KeyRange: 32},
			},
		},
	}
}

// AdaptiveByName resolves an adaptive-suite scenario.
func AdaptiveByName(name string) (Scenario, bool) {
	for _, s := range AdaptiveLibrary() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
