package repro_test

import (
	"errors"
	"testing"

	"repro"
	"repro/internal/spec"
)

// The catalog-driven lockstep fuzzers: one per object kind, running
// EVERY same-kind backend of repro.Catalog() against the sequential
// spec on the same decoded solo op sequence. A backend added to the
// catalog is fuzzed automatically; none is listed here by name. Solo
// runs must agree exactly — weak backends never abort without
// concurrency (the paper's obstruction-freedom obligation, E2), and
// the single-pid pooled backends recycle every retired node on the
// very next operation, keeping maximum same-handle reuse pressure on
// the sequence tags.

// fuzzKind replays data (byte 2i: op code mod ops.N; byte 2i+1:
// value) against one backend's uniform driver and a spec oracle.
// check returns the spec's answer for the op: the expected value (or
// boolean as 1/0) and the sentinel error the backend must report
// (nil for success).
func fuzzKind(t *testing.T, name string, ops repro.Ops, data []byte,
	check func(op int, v uint64) (uint64, error)) {
	t.Helper()
	for i := 0; i+1 < len(data); i += 2 {
		op := int(data[i]) % ops.N
		v := uint64(data[i+1])
		got, err := ops.Do(0, op, v)
		want, wantErr := check(op, v)
		if !errors.Is(err, wantErr) || (err == nil && got != want) {
			t.Fatalf("%s op %d: code %d(%d) = (%d, %v), spec (%d, %v)",
				name, i, op, v, got, err, want, wantErr)
		}
	}
}

func FuzzStackBackendsAgree(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{0, 9, 1, 0, 0, 8, 0, 7, 0, 6, 0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		for _, b := range repro.CatalogByKind(repro.KindStack) {
			ops := repro.Drive(b, append([]repro.Option{
				repro.WithCapacity(k), repro.WithProcs(1)}, b.LinOpts...)...)
			cap := k
			if !b.Bounded {
				cap = 1 << 30
			}
			ref := spec.NewStack[uint64](cap)
			fuzzKind(t, b.Name, ops, data, func(op int, v uint64) (uint64, error) {
				if op == 0 {
					if ref.Push(v) {
						return 0, nil
					}
					return 0, repro.ErrStackFull
				}
				if want, ok := ref.Pop(); ok {
					return want, nil
				}
				return 0, repro.ErrStackEmpty
			})
		}
	})
}

func FuzzQueueBackendsAgree(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{0, 9, 0, 8, 0, 7, 0, 6, 1, 0, 0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		for _, b := range repro.CatalogByKind(repro.KindQueue) {
			// LinOpts pin relaxed backends to their sequential shape
			// (the sharded queue striped to K=1 keeps global FIFO).
			ops := repro.Drive(b, append([]repro.Option{
				repro.WithCapacity(k), repro.WithProcs(1)}, b.LinOpts...)...)
			cap := k
			if !b.Bounded {
				cap = 1 << 30
			}
			ref := spec.NewQueue[uint64](cap)
			fuzzKind(t, b.Name, ops, data, func(op int, v uint64) (uint64, error) {
				if op == 0 {
					if ref.Enqueue(v) {
						return 0, nil
					}
					return 0, repro.ErrQueueFull
				}
				if want, ok := ref.Dequeue(); ok {
					return want, nil
				}
				return 0, repro.ErrQueueEmpty
			})
		}
	})
}

func FuzzDequeBackendsAgree(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0, 3, 0})
	f.Add([]byte{1, 9, 1, 8, 1, 7, 3, 0, 3, 0, 0, 5})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 2, 0, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 5
		for _, b := range repro.CatalogByKind(repro.KindDeque) {
			ops := repro.Drive(b, repro.WithCapacity(k), repro.WithProcs(1))
			ref := spec.NewDeque[uint32](k)
			fuzzKind(t, b.Name, ops, data, func(op int, v uint64) (uint64, error) {
				switch op {
				case 0:
					if ref.PushLeft(uint32(v)) {
						return 0, nil
					}
					return 0, repro.ErrDequeFull
				case 1:
					if ref.PushRight(uint32(v)) {
						return 0, nil
					}
					return 0, repro.ErrDequeFull
				case 2:
					if want, ok := ref.PopLeft(); ok {
						return uint64(want), nil
					}
					return 0, repro.ErrDequeEmpty
				default:
					if want, ok := ref.PopRight(); ok {
						return uint64(want), nil
					}
					return 0, repro.ErrDequeEmpty
				}
			})
		}
	})
}

// FuzzAdaptiveVsSpec drives the three adaptive meta-backends in
// lockstep with the sequential specs while the op stream forces rung
// migrations in BOTH directions at fuzzer-chosen points: opcode 3
// morphs all three objects to a data-chosen rung, so climbs, descents,
// and no-op self-morphs land between arbitrary op prefixes. Every op
// must agree with the spec exactly as if no migration had happened —
// migration is a representation change, never an abstract-state change
// — and the final drain re-checks the complete contents (order
// included) on whatever rung each object ended.
func FuzzAdaptiveVsSpec(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 3, 1, 1, 0, 3, 0, 1, 0})
	f.Add([]byte{0, 5, 3, 2, 0, 6, 3, 0, 1, 0, 1, 0, 2, 5})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 3, 1, 1, 0, 1, 0, 3, 2, 0, 7, 3, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		st := repro.NewAdaptiveStack[uint64](k, 1)
		qu := repro.NewAdaptiveQueue[uint64](k, 1, 1) // 1 shard: global FIFO on the top rung
		se := repro.NewAdaptiveSet(1)
		refS := spec.NewStack[uint64](k)
		refQ := spec.NewQueue[uint64](k)
		refSet := spec.NewSet()
		for i := 0; i+1 < len(data); i += 2 {
			op, v := int(data[i])%4, uint64(data[i+1])
			switch op {
			case 0:
				gotErr := st.Push(0, v)
				if wantOK := refS.Push(v); (gotErr == nil) != wantOK {
					t.Fatalf("op %d: stack push(%d) err %v, spec ok %v", i, v, gotErr, wantOK)
				}
				gotErr = qu.Enqueue(0, v)
				if wantOK := refQ.Enqueue(v); (gotErr == nil) != wantOK {
					t.Fatalf("op %d: queue enqueue(%d) err %v, spec ok %v", i, v, gotErr, wantOK)
				}
				if got, want := se.Add(0, v%16), refSet.Add(v%16); got != want {
					t.Fatalf("op %d: set add(%d) = %v, spec %v", i, v%16, got, want)
				}
			case 1:
				got, gotErr := st.Pop(0)
				if want, ok := refS.Pop(); (gotErr == nil) != ok || (ok && got != want) {
					t.Fatalf("op %d: stack pop = (%d, %v), spec (%d, %v)", i, got, gotErr, want, ok)
				}
				got, gotErr = qu.Dequeue(0)
				if want, ok := refQ.Dequeue(); (gotErr == nil) != ok || (ok && got != want) {
					t.Fatalf("op %d: queue dequeue = (%d, %v), spec (%d, %v)", i, got, gotErr, want, ok)
				}
				if got, want := se.Remove(0, v%16), refSet.Remove(v%16); got != want {
					t.Fatalf("op %d: set remove(%d) = %v, spec %v", i, v%16, got, want)
				}
			case 2:
				if got, want := se.Contains(0, v%16), refSet.Contains(v%16); got != want {
					t.Fatalf("op %d: set contains(%d) = %v, spec %v", i, v%16, got, want)
				}
			default:
				// Forced migration: solo, it must always reach its rung.
				if !st.MorphTo(0, int(v)%2) {
					t.Fatalf("op %d: stack MorphTo(%d) failed", i, int(v)%2)
				}
				if !qu.MorphTo(0, int(v)%3) {
					t.Fatalf("op %d: queue MorphTo(%d) failed", i, int(v)%3)
				}
				if !se.MorphTo(0, int(v)%3) {
					t.Fatalf("op %d: set MorphTo(%d) failed", i, int(v)%3)
				}
			}
		}
		// Drain both containers and sweep the key space: the complete
		// remaining contents must match the spec on the final rung.
		for {
			got, gotErr := st.Pop(0)
			want, ok := refS.Pop()
			if (gotErr == nil) != ok || (ok && got != want) {
				t.Fatalf("drain: stack pop = (%d, %v), spec (%d, %v)", got, gotErr, want, ok)
			}
			if !ok {
				break
			}
		}
		for {
			got, gotErr := qu.Dequeue(0)
			want, ok := refQ.Dequeue()
			if (gotErr == nil) != ok || (ok && got != want) {
				t.Fatalf("drain: queue dequeue = (%d, %v), spec (%d, %v)", got, gotErr, want, ok)
			}
			if !ok {
				break
			}
		}
		for key := uint64(0); key < 16; key++ {
			if got, want := se.Contains(0, key), refSet.Contains(key); got != want {
				t.Fatalf("sweep: set contains(%d) = %v, spec %v", key, got, want)
			}
		}
	})
}

func FuzzSetBackendsAgree(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 2, 1, 1, 1, 2, 1})
	f.Add([]byte{0, 5, 0, 3, 1, 5, 0, 4, 1, 3, 2, 4})
	f.Add([]byte{0, 9, 1, 9, 0, 9, 1, 9, 0, 9, 2, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, b := range repro.CatalogByKind(repro.KindSet) {
			inner := repro.Drive(b, repro.WithProcs(1))
			// Fold keys into a small range so duplicate adds, absent
			// removes, and membership flips all occur.
			ops := repro.Ops{N: inner.N, Do: func(pid, op int, v uint64) (uint64, error) {
				return inner.Do(pid, op, v%16)
			}}
			ref := spec.NewSet()
			fuzzKind(t, b.Name, ops, data, func(op int, v uint64) (uint64, error) {
				k := v % 16
				var want bool
				switch op {
				case 0:
					want = ref.Add(k)
				case 1:
					want = ref.Remove(k)
				default:
					want = ref.Contains(k)
				}
				if want {
					return 1, nil
				}
				return 0, nil
			})
		}
	})
}
