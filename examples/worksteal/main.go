// Work-stealing: the textbook application of a double-ended queue.
// Each worker owns a deque of task ids and works its right end
// (LIFO, cache-friendly); idle workers steal from other deques' left
// ends (FIFO, oldest task). This is exactly the access pattern the
// HLM deque is good at — owner and thief touch opposite ends, and the
// paper's §1.1 non-interference argument says they should almost
// never conflict, so the contention-sensitive wrapper stays on its
// lock-free fast path.
//
// Workers claim batches of task ids from a global counter, spread
// them over their own deque, and steal when both their deque and the
// counter run dry. The run verifies every task executes exactly once.
package main

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro"
)

const (
	workers  = 4
	tasks    = 200000
	capacity = 1 << 12
	batch    = 64
)

func main() {
	// One deque per worker; worker w is pid w on every deque (owner of
	// its own, thief on the others).
	deques := make([]*repro.Deque, workers)
	for i := range deques {
		deques[i] = repro.NewDeque(capacity, workers)
	}

	var next atomic.Int64
	executed := make([]atomic.Bool, tasks)
	var done atomic.Int64
	var steals, localPops atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			execute := func(t uint32) {
				if executed[t].Swap(true) {
					panic(fmt.Sprintf("task %d executed twice", t))
				}
				done.Add(1)
			}
			for done.Load() < tasks {
				// Prefer local work from the right end.
				if t, err := deques[self].PopRight(self); err == nil {
					localPops.Add(1)
					execute(t)
					continue
				} else if !errors.Is(err, repro.ErrDequeEmpty) {
					continue
				}
				// Local deque dry: claim a fresh batch.
				if n := next.Add(batch) - batch; n < tasks {
					end := n + batch
					if end > tasks {
						end = tasks
					}
					// Spread the tail of the batch over the deque
					// (executing directly if the window is full) and
					// run the head now.
					for t := n + 1; t < end; t++ {
						if deques[self].PushRight(self, uint32(t)) != nil {
							execute(uint32(t))
						}
					}
					execute(uint32(n))
					continue
				}
				// Nothing global left: steal the oldest task from a
				// victim's left end.
				victim := (self + 1) % workers
				if t, err := deques[victim].PopLeft(self); err == nil {
					steals.Add(1)
					execute(t)
				}
			}
		}(w)
	}
	wg.Wait()

	for t := range executed {
		if !executed[t].Load() {
			panic(fmt.Sprintf("task %d never executed", t))
		}
	}
	fmt.Printf("executed %d tasks exactly once across %d workers\n", tasks, workers)
	fmt.Printf("local pops: %d, steals: %d\n", localPops.Load(), steals.Load())
	for i, d := range deques {
		st := d.Guard().Stats()
		pct := 0.0
		if st.Fast+st.Slow > 0 {
			pct = 100 * float64(st.Slow) / float64(st.Fast+st.Slow)
		}
		fmt.Printf("deque %d: fast-path %d, slow-path %d (%.2f%% locked)\n", i, st.Fast, st.Slow, pct)
	}
}
