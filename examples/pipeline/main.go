// Pipeline: a two-stage producer/consumer pipeline over the
// contention-sensitive queue — the paper's own motivating pattern
// (§1.1: enqueues and dequeues on a non-empty queue do not interfere,
// so both ends stay lock-free almost all the time).
//
// Stage 1 produces work items; stage 2 hashes them (FNV-1a) and
// accumulates a checksum. The run verifies that exactly every item was
// processed once and reports how rarely the queue's slow path fired.
package main

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro"
)

const (
	producers = 3
	consumers = 3
	perProd   = 200000
	capacity  = 4096
)

func fnv1a(v uint64) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

func main() {
	q := repro.NewQueue[uint64](capacity, producers+consumers)

	var produced, consumed, checksum atomic.Uint64
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				item := uint64(pid)<<32 | uint64(i)
				for {
					err := q.Enqueue(pid, item)
					if err == nil {
						break
					}
					if !errors.Is(err, repro.ErrQueueFull) {
						panic(err)
					}
				}
				produced.Add(1)
			}
		}(p)
	}

	total := uint64(producers * perProd)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for consumed.Load() < total {
				item, err := q.Dequeue(pid)
				if err != nil {
					if !errors.Is(err, repro.ErrQueueEmpty) {
						panic(err)
					}
					continue
				}
				checksum.Add(fnv1a(item))
				consumed.Add(1)
			}
		}(producers + c)
	}
	wg.Wait()

	// Recompute the expected checksum sequentially.
	var want uint64
	for p := 0; p < producers; p++ {
		for i := 0; i < perProd; i++ {
			want += fnv1a(uint64(p)<<32 | uint64(i))
		}
	}

	st := q.Guard().Stats()
	fmt.Printf("produced=%d consumed=%d\n", produced.Load(), consumed.Load())
	fmt.Printf("checksum ok: %v\n", checksum.Load() == want)
	fmt.Printf("queue ops on lock-free shortcut: %d, on locked slow path: %d (%.2f%%)\n",
		st.Fast, st.Slow, 100*float64(st.Slow)/float64(st.Fast+st.Slow))
}
