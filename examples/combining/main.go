// Flat combining and sharding: the scaling tier of the contended
// path. Part 1 drives the combining stack through a solo phase and a
// storm phase: solo operations stay on the six-access lock-free
// shortcut (zero published requests), while the storm diverts to the
// publication list where one combiner serves whole batches per lock
// acquisition — the batch mean is the amortization factor over the
// one-at-a-time fallback of Figure 3. Part 2 runs producers and
// consumers over the pid-striped sharded queue and verifies every
// value is delivered exactly once even when consumers steal from
// non-home shards.
package main

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro"
)

const (
	procs    = 8
	perProc  = 50000
	capacity = 1 << 10
)

func main() {
	// Part 1: combining stack, solo then storm.
	s := repro.NewCombiningStack[uint64](capacity, procs)

	for i := 0; i < perProc; i++ {
		mustStack(s.Push(0, uint64(i)))
		if i%2 == 1 {
			if _, err := s.Pop(0); err != nil && !errors.Is(err, repro.ErrStackEmpty) {
				panic(err)
			}
		}
	}
	solo := s.Stats()
	fmt.Printf("solo phase:  %d ops, %d published (all on the lock-free fast path)\n",
		solo.Fast+solo.Published, solo.Published)
	s.ResetStats()

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				if i%2 == 0 {
					mustStack(s.Push(pid, uint64(pid)<<32|uint64(i)))
				} else if _, err := s.Pop(pid); err != nil && !errors.Is(err, repro.ErrStackEmpty) {
					panic(err)
				}
			}
		}(p)
	}
	wg.Wait()
	storm := s.Stats()
	fmt.Printf("storm phase: %d ops, %d published, %d combining passes\n",
		storm.Fast+storm.Published, storm.Published, storm.Combines)
	if storm.Combines > 0 {
		fmt.Printf("             batch mean %.1f, max batch %d (1 lock acquisition serves the batch)\n",
			storm.BatchMean(), storm.MaxBatch)
	} else {
		fmt.Println("             no operations overlapped (single hardware thread?): the fast path absorbed the storm")
	}

	// Part 2: sharded queue, producers/consumers with stealing.
	q := repro.NewShardedQueue[uint64](capacity, procs, 4)
	const producers = procs / 2
	total := int64(producers * perProc)
	var delivered atomic.Int64
	seen := make([]atomic.Bool, producers*perProc)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				id := uint64(pid*perProc + i)
				for {
					err := q.Enqueue(pid, id)
					if err == nil {
						break
					}
					if !errors.Is(err, repro.ErrQueueFull) {
						panic(err)
					}
				}
			}
		}(p)
	}
	for c := 0; c < procs-producers; c++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for delivered.Load() < total {
				v, err := q.Dequeue(pid)
				if err != nil {
					if !errors.Is(err, repro.ErrQueueEmpty) {
						panic(err)
					}
					continue
				}
				if seen[v].Swap(true) {
					panic(fmt.Sprintf("value %d delivered twice", v))
				}
				delivered.Add(1)
			}
		}(producers + c)
	}
	wg.Wait()
	fmt.Printf("\nsharded queue: %d values over %d shards, delivered exactly once\n",
		total, q.Shards())
	fmt.Printf("               %d steals, %d spills (owner-first, steal-on-empty)\n",
		q.Steals(), q.Spills())
}

func mustStack(err error) {
	if err != nil && !errors.Is(err, repro.ErrStackFull) {
		panic(err)
	}
}
