// Quickstart: the contention-sensitive stack and queue through the
// public API. Each goroutine that touches an object gets a process
// identity in [0, n) — the paper's model of n known processes.
package main

import (
	"errors"
	"fmt"
	"sync"

	"repro"
)

func main() {
	const procs = 4

	// A linearizable, starvation-free stack of capacity 128 (the
	// paper's Figure 3). Contention-free operations are lock-free and
	// cost six shared-memory accesses.
	s := repro.NewStack[string](128, procs)

	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := s.Push(pid, fmt.Sprintf("p%d-item%d", pid, i)); err != nil {
					fmt.Println("push:", err)
				}
			}
		}(pid)
	}
	wg.Wait()

	fmt.Println("stack after 20 concurrent pushes:")
	for {
		v, err := s.Pop(0)
		if errors.Is(err, repro.ErrStackEmpty) {
			break
		}
		fmt.Printf("  popped %s\n", v)
	}

	// Guard statistics show the contention-sensitive split: how many
	// operations used the lock-free shortcut vs the locked slow path.
	st := s.Guard().Stats()
	fmt.Printf("fast-path ops: %d, slow-path ops: %d\n", st.Fast, st.Slow)

	// The weak (abortable) stack underneath: a single attempt either
	// takes effect or reports ⊥ with no effect.
	weak := repro.NewAbortableStack[int](8)
	if err := weak.TryPush(42); err != nil {
		fmt.Println("solo weak pushes never abort, but got:", err)
	}
	v, _ := weak.TryPop()
	fmt.Println("weak round-trip:", v)

	// And the FIFO sibling, this time through the backend catalog:
	// every implementation sits behind one capability-typed contract
	// per object kind, resolved by name with functional options.
	q, err := repro.NewQueueBackend[int]("sensitive",
		repro.WithCapacity(16), repro.WithProcs(procs))
	if err != nil {
		panic(err)
	}
	for i := 1; i <= 3; i++ {
		if err := q.Enqueue(0, i); err != nil {
			fmt.Println("enqueue:", err)
		}
	}
	fmt.Print("queue drains in FIFO order:")
	for {
		v, err := q.Dequeue(1)
		if errors.Is(err, repro.ErrQueueEmpty) {
			break
		}
		fmt.Printf(" %d", v)
	}
	fmt.Println()

	// The catalog itself is data: swap "sensitive" for any same-kind
	// name below (WithPooled redirects to a pooled sibling where one
	// exists) and the code above runs unchanged.
	fmt.Print("queue backends in the catalog:")
	for _, b := range repro.CatalogByKind(repro.KindQueue) {
		fmt.Printf(" %s", b.Name)
	}
	fmt.Println()
}
