// Fairness: the §4.4 lock transformation in action. Eight goroutines
// hammer critical sections guarded by (a) a raw test-and-set lock
// (deadlock-free only) and (b) the same lock wrapped in the paper's
// FLAG/TURN round-robin (starvation-free). The per-process completion
// counts and Jain's fairness index show what the transformation buys.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lock"
	"repro/internal/metrics"
)

func measure(name string, lk lock.PidLock, procs int, d time.Duration) {
	counts := make([]uint64, procs)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for !stop.Load() {
				lk.Acquire(pid)
				counts[pid]++
				lk.Release(pid)
			}
		}(p)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()

	min, max := metrics.MinMax(counts)
	fmt.Printf("%-22s total=%-9d min/proc=%-8d max/proc=%-8d jain=%.3f\n",
		name, metrics.Sum(counts), min, max, metrics.JainIndex(counts))
}

func main() {
	const procs = 8
	const d = 500 * time.Millisecond

	fmt.Printf("%d goroutines competing for %v per lock:\n\n", procs, d)
	measure("TAS (deadlock-free)", lock.IgnorePid(lock.NewTAS()), procs, d)
	measure("RR(TAS) [paper §4.4]", lock.NewRoundRobin(lock.NewTAS(), procs), procs, d)
	measure("Ticket (reference)", lock.IgnorePid(lock.NewTicket()), procs, d)

	fmt.Println("\nthe round-robin transformation trades raw throughput for a")
	fmt.Println("starvation-freedom guarantee: the min/proc column stops collapsing.")
}
