// Contention phases: watch contention-sensitivity happen. The same
// stack serves a solo phase, a contention storm, and another solo
// phase; instrumented registers count shared accesses per operation
// and the guard reports how often the lock was taken. Solo phases run
// at Theorem 1's six accesses per operation with zero lock
// acquisitions; only the storm pays more.
package main

import (
	"fmt"
	"sync"

	"repro/internal/lock"
	"repro/internal/memory"
	"repro/internal/stack"
	"repro/internal/workload"
)

func main() {
	const procs, k = 8, 1024

	var st memory.Stats
	weak := stack.NewAbortableObserved[uint64](k, &st)
	s := stack.NewSensitiveFromObserved[uint64](weak, lock.NewRoundRobin(lock.NewTAS(), procs), &st)

	phases := workload.SoloThenStorm(procs, 100000)
	for pi, ph := range phases {
		before := st.Snapshot()
		slowBefore := s.Guard().Stats().Slow

		var wg sync.WaitGroup
		for p := 0; p < ph.Procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := workload.NewRNG(uint64(pid*7 + pi))
				for i := 0; i < ph.Ops; i++ {
					if workload.Balanced.NextIsPush(rng) {
						_ = s.Push(pid, workload.Value(pid, i))
					} else {
						_, _ = s.Pop(pid)
					}
				}
			}(p)
		}
		wg.Wait()

		delta := st.Snapshot().Sub(before)
		ops := uint64(ph.Procs * ph.Ops)
		slow := s.Guard().Stats().Slow - slowBefore
		name := []string{"solo-warm", "storm", "solo-cool"}[pi]
		fmt.Printf("phase %-9s  procs=%d  ops=%-7d  accesses/op=%.2f  lock acquisitions=%d\n",
			name, ph.Procs, ops, float64(delta.Total())/float64(ops), slow)
	}
	fmt.Println("\nsolo phases: ≈6 accesses/op and 0 lock acquisitions (Theorem 1);")
	fmt.Println("the storm phase alone pays for retries and locking.")
}
