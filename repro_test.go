package repro_test

import (
	"errors"
	"sync"
	"testing"

	"repro"
)

func TestPublicStackQuickstart(t *testing.T) {
	const procs = 4
	s := repro.NewStack[string](8, procs)
	if err := s.Push(0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(1, "b"); err != nil {
		t.Fatal(err)
	}
	v, err := s.Pop(2)
	if err != nil || v != "b" {
		t.Fatalf("Pop = (%q, %v), want (b, nil)", v, err)
	}
	if s.Progress() != repro.StarvationFree {
		t.Fatal("stack does not advertise starvation-freedom")
	}
}

func TestPublicStackConcurrent(t *testing.T) {
	const procs, per = 8, 2000
	s := repro.NewStack[int](64, procs)
	var wg sync.WaitGroup
	var popped sync.Map
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					err := s.Push(pid, pid*per+i)
					if err == nil {
						break
					}
					if !errors.Is(err, repro.ErrStackFull) {
						t.Errorf("push: %v", err)
						return
					}
					if v, err := s.Pop(pid); err == nil {
						if _, dup := popped.LoadOrStore(v, true); dup {
							t.Errorf("value %d popped twice", v)
							return
						}
					}
				}
			}
		}(p)
	}
	wg.Wait()
	for {
		v, err := s.Pop(0)
		if err != nil {
			break
		}
		if _, dup := popped.LoadOrStore(v, true); dup {
			t.Fatalf("value %d popped twice in drain", v)
		}
	}
	n := 0
	popped.Range(func(_, _ any) bool { n++; return true })
	if n != procs*per {
		t.Fatalf("recovered %d values, want %d", n, procs*per)
	}
}

func TestPublicQueueFIFO(t *testing.T) {
	q := repro.NewQueue[int](4, 2)
	for i := 1; i <= 3; i++ {
		if err := q.Enqueue(0, i); err != nil {
			t.Fatal(err)
		}
	}
	for want := 1; want <= 3; want++ {
		v, err := q.Dequeue(1)
		if err != nil || v != want {
			t.Fatalf("Dequeue = (%d, %v), want (%d, nil)", v, err, want)
		}
	}
	if _, err := q.Dequeue(0); !errors.Is(err, repro.ErrQueueEmpty) {
		t.Fatalf("empty dequeue = %v", err)
	}
}

func TestPublicAbortableContracts(t *testing.T) {
	s := repro.NewAbortableStack[int](1)
	if err := s.TryPush(1); err != nil {
		t.Fatal(err)
	}
	if err := s.TryPush(2); !errors.Is(err, repro.ErrStackFull) {
		t.Fatalf("push on full = %v", err)
	}
	q := repro.NewAbortableQueue[int](1)
	if _, err := q.TryDequeue(); !errors.Is(err, repro.ErrQueueEmpty) {
		t.Fatalf("dequeue on empty = %v", err)
	}
}

func TestPublicGuardComposition(t *testing.T) {
	// Build a contention-sensitive counter from scratch with Guard/Do:
	// the README's "any abortable object" claim.
	g := repro.NewGuard(repro.NewStarvationFreeLock(repro.NewTASLock(), 4))
	reg := repro.NewTreiberStack[int]()
	for pid := 0; pid < 4; pid++ {
		repro.Do(g, pid, func() (int, bool) {
			err := reg.TryPush(pid)
			return 0, err == nil
		})
	}
	if got := reg.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
}

func TestPublicNonBlocking(t *testing.T) {
	s := repro.NewNonBlockingStack[int](4)
	if err := s.Push(7); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Pop(); err != nil || v != 7 {
		t.Fatalf("Pop = (%d, %v)", v, err)
	}
	q := repro.NewNonBlockingQueue[int](4)
	if err := q.Enqueue(9); err != nil {
		t.Fatal(err)
	}
	if v, err := q.Dequeue(); err != nil || v != 9 {
		t.Fatalf("Dequeue = (%d, %v)", v, err)
	}
}

func TestPublicDeque(t *testing.T) {
	d := repro.NewDeque(8, 2)
	if err := d.PushRight(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.PushLeft(1, 2); err != nil {
		t.Fatal(err)
	}
	if v, err := d.PopRight(0); err != nil || v != 1 {
		t.Fatalf("PopRight = (%d, %v)", v, err)
	}
	if v, err := d.PopLeft(1); err != nil || v != 2 {
		t.Fatalf("PopLeft = (%d, %v)", v, err)
	}
	if _, err := d.PopLeft(0); !errors.Is(err, repro.ErrDequeEmpty) {
		t.Fatalf("empty pop = %v", err)
	}
	w := repro.NewAbortableDeque(4)
	if err := w.TryPushRight(9); err != nil {
		t.Fatal(err)
	}
	nb := repro.NewNonBlockingDeque(4)
	if err := nb.PushLeft(3); err != nil {
		t.Fatal(err)
	}
}

func TestProgressOrder(t *testing.T) {
	if !repro.StarvationFree.Implies(repro.NonBlocking) ||
		!repro.NonBlocking.Implies(repro.ObstructionFree) ||
		!repro.WaitFree.Implies(repro.StarvationFree) {
		t.Fatal("progress hierarchy broken")
	}
}

func TestTicketLockPublic(t *testing.T) {
	lk := repro.NewTicketLock()
	done := make(chan struct{})
	lk.Lock()
	go func() {
		lk.Lock()
		lk.Unlock()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("second Lock acquired while held")
	default:
	}
	lk.Unlock()
	<-done
}

func TestPublicPooledStackAndQueue(t *testing.T) {
	const procs = 4
	s := repro.NewPooledStack(procs)
	q := repro.NewPooledQueue(procs)
	for i := uint64(0); i < 100; i++ {
		if err := s.Push(int(i)%procs, i); err != nil {
			t.Fatal(err)
		}
		q.Enqueue(int(i)%procs, i)
	}
	for i := uint64(0); i < 100; i++ {
		if v, err := s.Pop(0); err != nil || v != 99-i {
			t.Fatalf("stack pop %d = (%d, %v)", i, v, err)
		}
		if v, err := q.Dequeue(0); err != nil || v != i {
			t.Fatalf("queue dequeue %d = (%d, %v)", i, v, err)
		}
	}
	if _, err := s.Pop(0); !errors.Is(err, repro.ErrStackEmpty) {
		t.Fatalf("pop on empty = %v", err)
	}
	if _, err := q.Dequeue(0); !errors.Is(err, repro.ErrQueueEmpty) {
		t.Fatalf("dequeue on empty = %v", err)
	}
	// The facade exposes the recycling counters: a push/enqueue after
	// the drain must reuse a retired node, not grow the arena.
	if err := s.Push(0, 7); err != nil {
		t.Fatal(err)
	}
	q.Enqueue(0, 7)
	var st repro.PoolStats = s.PoolStats()
	if st.Reuses == 0 || q.PoolStats().Reuses == 0 {
		t.Fatalf("no recycling observed: stack %+v, queue %+v", st, q.PoolStats())
	}
	if st.Drops != 0 {
		t.Fatalf("stack pool dropped handles: %+v", st)
	}
}

func TestPublicCombiningPooled(t *testing.T) {
	const procs = 2
	s := repro.NewCombiningPooledStack(8, procs)
	q := repro.NewCombiningPooledQueue(8, procs)
	for i := uint64(1); i <= 5; i++ {
		if err := s.Push(0, i); err != nil {
			t.Fatal(err)
		}
		if err := q.Enqueue(1, i); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := s.Pop(1); err != nil || v != 5 {
		t.Fatalf("combining pooled stack pop = (%d, %v)", v, err)
	}
	if v, err := q.Dequeue(0); err != nil || v != 1 {
		t.Fatalf("combining pooled queue dequeue = (%d, %v)", v, err)
	}
}

func TestPublicSetTier(t *testing.T) {
	const procs = 4
	builders := map[string]interface {
		Add(pid int, k uint64) bool
		Remove(pid int, k uint64) bool
		Contains(pid int, k uint64) bool
	}{
		"sensitive": repro.NewSet(procs),
		"lock-free": repro.NewLockFreeSet(procs),
		"combining": repro.NewCombiningSet(procs),
		"retrying":  repro.NewNonBlockingSet(),
		"hash":      repro.NewHashSet(procs),
	}
	for name, s := range builders {
		if !s.Add(0, 7) || s.Add(1, 7) {
			t.Fatalf("%s: duplicate Add answers wrong", name)
		}
		if !s.Contains(2, 7) || s.Contains(2, 8) {
			t.Fatalf("%s: Contains answers wrong", name)
		}
		if !s.Remove(3, 7) || s.Remove(3, 7) {
			t.Fatalf("%s: Remove answers wrong", name)
		}
	}
}

func TestPublicHashSet(t *testing.T) {
	const procs = 2
	s := repro.NewHashSet(procs)
	// Wide enough to force table doublings through the public surface.
	for k := uint64(0); k < 300; k++ {
		if !s.Add(int(k)%procs, k) {
			t.Fatalf("Add(%d) = false", k)
		}
	}
	if s.Size() != 300 {
		t.Fatalf("Size() = %d, want 300", s.Size())
	}
	if s.Resizes() == 0 {
		t.Fatal("300 keys never doubled the table")
	}
	for k := uint64(0); k < 300; k++ {
		if !s.Contains(0, k) {
			t.Fatalf("key %d lost across resizes", k)
		}
	}
}

func TestPublicAbortableSet(t *testing.T) {
	s := repro.NewAbortableSet()
	if added, err := s.TryAdd(5); err != nil || !added {
		t.Fatalf("solo TryAdd = (%v, %v)", added, err)
	}
	if added, err := s.TryAdd(5); err != nil || added {
		t.Fatalf("duplicate TryAdd = (%v, %v), want (false, nil)", added, err)
	}
	if !s.Contains(5) {
		t.Fatal("Contains(5) = false")
	}
	if removed, err := s.TryRemove(5); err != nil || !removed {
		t.Fatalf("solo TryRemove = (%v, %v)", removed, err)
	}
	if errors.Is(repro.ErrSetAborted, repro.ErrStackAborted) {
		t.Fatal("set and stack abort sentinels must be distinct")
	}
}
