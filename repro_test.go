package repro_test

import (
	"errors"
	"fmt"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/cmanager"
	"repro/internal/core"
	"repro/internal/set"
	"repro/internal/stack"
)

func TestPublicStackQuickstart(t *testing.T) {
	const procs = 4
	s := repro.NewStack[string](8, procs)
	if err := s.Push(0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(1, "b"); err != nil {
		t.Fatal(err)
	}
	v, err := s.Pop(2)
	if err != nil || v != "b" {
		t.Fatalf("Pop = (%q, %v), want (b, nil)", v, err)
	}
	if s.Progress() != repro.StarvationFree {
		t.Fatal("stack does not advertise starvation-freedom")
	}
}

func TestPublicStackConcurrent(t *testing.T) {
	const procs, per = 8, 2000
	s := repro.NewStack[int](64, procs)
	var wg sync.WaitGroup
	var popped sync.Map
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					err := s.Push(pid, pid*per+i)
					if err == nil {
						break
					}
					if !errors.Is(err, repro.ErrStackFull) {
						t.Errorf("push: %v", err)
						return
					}
					if v, err := s.Pop(pid); err == nil {
						if _, dup := popped.LoadOrStore(v, true); dup {
							t.Errorf("value %d popped twice", v)
							return
						}
					}
				}
			}
		}(p)
	}
	wg.Wait()
	for {
		v, err := s.Pop(0)
		if err != nil {
			break
		}
		if _, dup := popped.LoadOrStore(v, true); dup {
			t.Fatalf("value %d popped twice in drain", v)
		}
	}
	n := 0
	popped.Range(func(_, _ any) bool { n++; return true })
	if n != procs*per {
		t.Fatalf("recovered %d values, want %d", n, procs*per)
	}
}

func TestPublicQueueFIFO(t *testing.T) {
	q := repro.NewQueue[int](4, 2)
	for i := 1; i <= 3; i++ {
		if err := q.Enqueue(0, i); err != nil {
			t.Fatal(err)
		}
	}
	for want := 1; want <= 3; want++ {
		v, err := q.Dequeue(1)
		if err != nil || v != want {
			t.Fatalf("Dequeue = (%d, %v), want (%d, nil)", v, err, want)
		}
	}
	if _, err := q.Dequeue(0); !errors.Is(err, repro.ErrQueueEmpty) {
		t.Fatalf("empty dequeue = %v", err)
	}
}

func TestPublicAbortableContracts(t *testing.T) {
	s := repro.NewAbortableStack[int](1)
	if err := s.TryPush(1); err != nil {
		t.Fatal(err)
	}
	if err := s.TryPush(2); !errors.Is(err, repro.ErrStackFull) {
		t.Fatalf("push on full = %v", err)
	}
	q := repro.NewAbortableQueue[int](1)
	if _, err := q.TryDequeue(); !errors.Is(err, repro.ErrQueueEmpty) {
		t.Fatalf("dequeue on empty = %v", err)
	}
}

func TestPublicGuardComposition(t *testing.T) {
	// Build a contention-sensitive counter from scratch with Guard/Do:
	// the README's "any abortable object" claim.
	g := repro.NewGuard(repro.NewStarvationFreeLock(repro.NewTASLock(), 4))
	reg := repro.NewTreiberStack[int]()
	for pid := 0; pid < 4; pid++ {
		repro.Do(g, pid, func() (int, bool) {
			err := reg.TryPush(pid)
			return 0, err == nil
		})
	}
	if got := reg.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
}

func TestPublicNonBlocking(t *testing.T) {
	s := repro.NewNonBlockingStack[int](4)
	if err := s.Push(7); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Pop(); err != nil || v != 7 {
		t.Fatalf("Pop = (%d, %v)", v, err)
	}
	q := repro.NewNonBlockingQueue[int](4)
	if err := q.Enqueue(9); err != nil {
		t.Fatal(err)
	}
	if v, err := q.Dequeue(); err != nil || v != 9 {
		t.Fatalf("Dequeue = (%d, %v)", v, err)
	}
}

func TestPublicDeque(t *testing.T) {
	d := repro.NewDeque(8, 2)
	if err := d.PushRight(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.PushLeft(1, 2); err != nil {
		t.Fatal(err)
	}
	if v, err := d.PopRight(0); err != nil || v != 1 {
		t.Fatalf("PopRight = (%d, %v)", v, err)
	}
	if v, err := d.PopLeft(1); err != nil || v != 2 {
		t.Fatalf("PopLeft = (%d, %v)", v, err)
	}
	if _, err := d.PopLeft(0); !errors.Is(err, repro.ErrDequeEmpty) {
		t.Fatalf("empty pop = %v", err)
	}
	w := repro.NewAbortableDeque(4)
	if err := w.TryPushRight(9); err != nil {
		t.Fatal(err)
	}
	nb := repro.NewNonBlockingDeque(4)
	if err := nb.PushLeft(3); err != nil {
		t.Fatal(err)
	}
}

func TestProgressOrder(t *testing.T) {
	if !repro.StarvationFree.Implies(repro.NonBlocking) ||
		!repro.NonBlocking.Implies(repro.ObstructionFree) ||
		!repro.WaitFree.Implies(repro.StarvationFree) {
		t.Fatal("progress hierarchy broken")
	}
}

func TestTicketLockPublic(t *testing.T) {
	lk := repro.NewTicketLock()
	done := make(chan struct{})
	lk.Lock()
	go func() {
		lk.Lock()
		lk.Unlock()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("second Lock acquired while held")
	default:
	}
	lk.Unlock()
	<-done
}

func TestPublicPooledStackAndQueue(t *testing.T) {
	const procs = 4
	s := repro.NewPooledStack(procs)
	q := repro.NewPooledQueue(procs)
	for i := uint64(0); i < 100; i++ {
		if err := s.Push(int(i)%procs, i); err != nil {
			t.Fatal(err)
		}
		q.Enqueue(int(i)%procs, i)
	}
	for i := uint64(0); i < 100; i++ {
		if v, err := s.Pop(0); err != nil || v != 99-i {
			t.Fatalf("stack pop %d = (%d, %v)", i, v, err)
		}
		if v, err := q.Dequeue(0); err != nil || v != i {
			t.Fatalf("queue dequeue %d = (%d, %v)", i, v, err)
		}
	}
	if _, err := s.Pop(0); !errors.Is(err, repro.ErrStackEmpty) {
		t.Fatalf("pop on empty = %v", err)
	}
	if _, err := q.Dequeue(0); !errors.Is(err, repro.ErrQueueEmpty) {
		t.Fatalf("dequeue on empty = %v", err)
	}
	// The facade exposes the recycling counters: a push/enqueue after
	// the drain must reuse a retired node, not grow the arena.
	if err := s.Push(0, 7); err != nil {
		t.Fatal(err)
	}
	q.Enqueue(0, 7)
	var st repro.PoolStats = s.PoolStats()
	if st.Reuses == 0 || q.PoolStats().Reuses == 0 {
		t.Fatalf("no recycling observed: stack %+v, queue %+v", st, q.PoolStats())
	}
	if st.Drops != 0 {
		t.Fatalf("stack pool dropped handles: %+v", st)
	}
}

func TestPublicCombiningPooled(t *testing.T) {
	const procs = 2
	s := repro.NewCombiningPooledStack(8, procs)
	q := repro.NewCombiningPooledQueue(8, procs)
	for i := uint64(1); i <= 5; i++ {
		if err := s.Push(0, i); err != nil {
			t.Fatal(err)
		}
		if err := q.Enqueue(1, i); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := s.Pop(1); err != nil || v != 5 {
		t.Fatalf("combining pooled stack pop = (%d, %v)", v, err)
	}
	if v, err := q.Dequeue(0); err != nil || v != 1 {
		t.Fatalf("combining pooled queue dequeue = (%d, %v)", v, err)
	}
}

func TestPublicSetTier(t *testing.T) {
	const procs = 4
	builders := map[string]interface {
		Add(pid int, k uint64) bool
		Remove(pid int, k uint64) bool
		Contains(pid int, k uint64) bool
	}{
		"sensitive": repro.NewSet(procs),
		"lock-free": repro.NewLockFreeSet(procs),
		"combining": repro.NewCombiningSet(procs),
		"retrying":  repro.NewNonBlockingSet(),
		"hash":      repro.NewHashSet(procs),
	}
	for name, s := range builders {
		if !s.Add(0, 7) || s.Add(1, 7) {
			t.Fatalf("%s: duplicate Add answers wrong", name)
		}
		if !s.Contains(2, 7) || s.Contains(2, 8) {
			t.Fatalf("%s: Contains answers wrong", name)
		}
		if !s.Remove(3, 7) || s.Remove(3, 7) {
			t.Fatalf("%s: Remove answers wrong", name)
		}
	}
}

func TestPublicHashSet(t *testing.T) {
	const procs = 2
	s := repro.NewHashSet(procs)
	// Wide enough to force table doublings through the public surface.
	for k := uint64(0); k < 300; k++ {
		if !s.Add(int(k)%procs, k) {
			t.Fatalf("Add(%d) = false", k)
		}
	}
	if s.Size() != 300 {
		t.Fatalf("Size() = %d, want 300", s.Size())
	}
	if s.Resizes() == 0 {
		t.Fatal("300 keys never doubled the table")
	}
	for k := uint64(0); k < 300; k++ {
		if !s.Contains(0, k) {
			t.Fatalf("key %d lost across resizes", k)
		}
	}
}

func TestPublicAbortableSet(t *testing.T) {
	s := repro.NewAbortableSet()
	if added, err := s.TryAdd(5); err != nil || !added {
		t.Fatalf("solo TryAdd = (%v, %v)", added, err)
	}
	if added, err := s.TryAdd(5); err != nil || added {
		t.Fatalf("duplicate TryAdd = (%v, %v), want (false, nil)", added, err)
	}
	if !s.Contains(5) {
		t.Fatal("Contains(5) = false")
	}
	if removed, err := s.TryRemove(5); err != nil || !removed {
		t.Fatalf("solo TryRemove = (%v, %v)", removed, err)
	}
	if errors.Is(repro.ErrSetAborted, repro.ErrStackAborted) {
		t.Fatal("set and stack abort sentinels must be distinct")
	}
}

// --- catalog & options API ---------------------------------------------

// TestCatalogShape pins the catalog's structural invariants: unique
// kind-prefixed names, complete metadata, exactly the right
// constructor closure per kind, and E20 (the catalog-wide dispatch
// experiment) covering every entry.
func TestCatalogShape(t *testing.T) {
	seen := map[string]bool{}
	kinds := map[string]int{}
	for _, b := range repro.Catalog() {
		if seen[b.Name] {
			t.Fatalf("duplicate catalog name %s", b.Name)
		}
		seen[b.Name] = true
		kinds[b.Kind]++
		if !strings.HasPrefix(b.Name, b.Kind+"/") {
			t.Errorf("%s: name not prefixed by kind %q", b.Name, b.Kind)
		}
		if b.Constructor == "" || b.Object == "" || b.Tier == "" ||
			b.Progress == "" || b.Domain == "" || b.Allocation == "" {
			t.Errorf("%s: incomplete metadata: %+v", b.Name, b)
		}
		nonNil := 0
		for _, ok := range []bool{b.Stack != nil, b.Queue != nil, b.Deque != nil, b.Set != nil} {
			if ok {
				nonNil++
			}
		}
		if nonNil != 1 {
			t.Errorf("%s: %d kind constructors set, want exactly 1", b.Name, nonNil)
		}
		if b.Direct == nil {
			t.Errorf("%s: no direct-call builder", b.Name)
		}
		hasE20 := false
		for _, e := range b.Experiments {
			if e == "E20" {
				hasE20 = true
			}
		}
		if !hasE20 {
			t.Errorf("%s: not covered by E20", b.Name)
		}
	}
	for _, kind := range []string{repro.KindStack, repro.KindQueue, repro.KindDeque, repro.KindSet} {
		if kinds[kind] == 0 {
			t.Errorf("catalog has no %s entries", kind)
		}
	}
}

// TestCatalogDriveSolo pushes one value through every catalog entry's
// interface and direct drivers: the uniform op encoding must
// round-trip on both paths.
func TestCatalogDriveSolo(t *testing.T) {
	opts := []repro.Option{repro.WithCapacity(8), repro.WithProcs(1)}
	for _, b := range repro.Catalog() {
		for path, ops := range map[string]repro.Ops{
			"interface": repro.Drive(b, opts...),
			"direct":    b.Direct(opts...),
		} {
			if _, err := ops.Do(0, 0, 7); err != nil {
				t.Fatalf("%s/%s: op 0 (insert 7): %v", b.Name, path, err)
			}
			popOp := 1 // stack/queue remove
			switch b.Kind {
			case repro.KindDeque:
				popOp = 2 // popL pairs with op 0 = pushL
			case repro.KindSet:
				popOp = 2 // contains
			}
			got, err := ops.Do(0, popOp, 7)
			want := uint64(7)
			if b.Kind == repro.KindSet {
				want = 1 // membership answer
			}
			if err != nil || got != want {
				t.Fatalf("%s/%s: op %d = (%d, %v), want (%d, nil)", b.Name, path, popOp, got, err, want)
			}
		}
	}
}

// TestLegacyAndCatalogPathsAgree drives a legacy concrete-type
// constructor and its options-API equivalent side by side through the
// same op sequence, per object kind.
func TestLegacyAndCatalogPathsAgree(t *testing.T) {
	// Stack, generic domain: NewStack vs NewStackBackend("sensitive").
	legacy := repro.NewStack[string](4, 2)
	viaAPI, err := repro.NewStackBackend[string]("sensitive", repro.WithCapacity(4), repro.WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []string{"a", "b", "c"} {
		if e1, e2 := legacy.Push(0, v), viaAPI.Push(0, v); e1 != nil || e2 != nil {
			t.Fatalf("push %d: legacy %v, catalog %v", i, e1, e2)
		}
	}
	for i := 0; i < 4; i++ {
		v1, e1 := legacy.Pop(1)
		v2, e2 := viaAPI.Pop(1)
		if v1 != v2 || !errors.Is(e2, e1) && (e1 != nil || e2 != nil) {
			t.Fatalf("pop %d: legacy (%q, %v), catalog (%q, %v)", i, v1, e1, v2, e2)
		}
	}

	// Queue, uint64 pooled domain: NewPooledQueue vs WithPooled redirect.
	lq := repro.NewPooledQueue(2)
	cq, err := repro.NewQueueBackend[uint64]("michael-scott-pooled", repro.WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		lq.Enqueue(0, i)
		if err := cq.Enqueue(0, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		v1, e1 := lq.Dequeue(1)
		v2, e2 := cq.Dequeue(1)
		if v1 != v2 || (e1 == nil) != (e2 == nil) {
			t.Fatalf("dequeue %d: legacy (%d, %v), catalog (%d, %v)", i, v1, e1, v2, e2)
		}
	}

	// Deque: NewDeque vs NewDequeBackend("sensitive").
	ld := repro.NewDeque(4, 2)
	cd, err := repro.NewDequeBackend("sensitive", repro.WithCapacity(4), repro.WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	if e1, e2 := ld.PushRight(0, 9), cd.PushRight(0, 9); e1 != nil || e2 != nil {
		t.Fatalf("deque push: legacy %v, catalog %v", e1, e2)
	}
	v1, e1 := ld.PopLeft(1)
	v2, e2 := cd.PopLeft(1)
	if v1 != v2 || e1 != nil || e2 != nil {
		t.Fatalf("deque pop: legacy (%d, %v), catalog (%d, %v)", v1, e1, v2, e2)
	}

	// Set: NewLockFreeSet vs NewSetBackend("harris").
	ls := repro.NewLockFreeSet(2)
	cs, err := repro.NewSetBackend("harris", repro.WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{5, 5, 9} {
		got, cerr := cs.Add(0, k)
		if want := ls.Add(0, k); got != want || cerr != nil {
			t.Fatalf("set add %d: legacy %v, catalog (%v, %v)", k, want, got, cerr)
		}
	}
}

// TestBackendConstructorErrors pins the failure modes: unknown names,
// domain mismatches, and pooled redirection without a sibling.
func TestBackendConstructorErrors(t *testing.T) {
	if _, err := repro.NewStackBackend[int]("no-such-backend"); err == nil {
		t.Fatal("unknown backend accepted")
	} else if !strings.Contains(err.Error(), "stack/treiber") {
		t.Fatalf("unknown-backend error does not list the catalog: %v", err)
	}
	if _, err := repro.NewStackBackend[string]("treiber-pooled"); err == nil {
		t.Fatal("uint64-only backend instantiated at string")
	}
	if _, err := repro.NewStackBackend[uint64]("elimination", repro.WithPooled()); err == nil {
		t.Fatal("WithPooled accepted on a backend with no pooled sibling")
	}
	// Already-pooled names pass WithPooled through unchanged.
	if _, err := repro.NewQueueBackend[uint64]("michael-scott-pooled", repro.WithPooled()); err != nil {
		t.Fatalf("WithPooled on an already-pooled backend: %v", err)
	}
}

// TestUnwrapExtensions reaches a concrete-type extension through the
// adapter layer: the pooled stack's recycling counters.
func TestUnwrapExtensions(t *testing.T) {
	s, err := repro.NewStackBackend[uint64]("treiber", repro.WithProcs(1), repro.WithPooled())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pop(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(0, 2); err != nil {
		t.Fatal(err)
	}
	ps, ok := repro.Unwrap(s).(interface{ PoolStats() repro.PoolStats })
	if !ok {
		t.Fatal("Unwrap did not expose PoolStats on the pooled stack")
	}
	if ps.PoolStats().Reuses == 0 {
		t.Fatal("no recycling observed through the catalog surface")
	}
}

// retryPolicied mirrors the seam the catalog forwards WithRetryPolicy
// through; every Figure 2 backend also reports the policy back.
type retryPolicied interface {
	RetryPolicy() (core.Manager, int)
}

// TestWithRetryPolicyReachesEveryFigure2Backend builds the four
// non-blocking backends through their public constructors with
// WithRetryPolicy and reads the policy back through Unwrap: the option
// must survive the adapter layers on every kind.
func TestWithRetryPolicyReachesEveryFigure2Backend(t *testing.T) {
	opt := repro.WithRetryPolicy("adaptive", 4)
	check := func(name string, x any, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rp, ok := repro.Unwrap(x).(retryPolicied)
		if !ok {
			t.Fatalf("%s: Unwrap does not expose the retry policy", name)
		}
		m, budget := rp.RetryPolicy()
		if budget != 4 {
			t.Fatalf("%s: budget = %d, want 4", name, budget)
		}
		if _, ok := m.(*cmanager.Adaptive); !ok {
			t.Fatalf("%s: manager = %T, want *cmanager.Adaptive", name, m)
		}
	}
	s, err := repro.NewStackBackend[uint64]("non-blocking", opt)
	check("stack/non-blocking", s, err)
	q, err := repro.NewQueueBackend[uint64]("non-blocking", opt)
	check("queue/non-blocking", q, err)
	d, err := repro.NewDequeBackend("non-blocking", opt)
	check("deque/non-blocking", d, err)
	st, err := repro.NewSetBackend("non-blocking", opt)
	check("set/non-blocking", st, err)
}

// TestWithRetryPolicySoloNeverSheds pins the E2 corollary at the API
// surface: a solo weak attempt always succeeds, so even the tightest
// budget (1 attempt, the obstruction-free rung) never degrades an
// uncontended operation.
func TestWithRetryPolicySoloNeverSheds(t *testing.T) {
	opt := repro.WithRetryPolicy("none", 1)
	s, err := repro.NewStackBackend[uint64]("non-blocking", opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push(0, 7); err != nil {
		t.Fatalf("solo Push under budget 1: %v", err)
	}
	if v, err := s.Pop(0); err != nil || v != 7 {
		t.Fatalf("solo Pop under budget 1 = (%d, %v)", v, err)
	}
	st, err := repro.NewSetBackend("non-blocking", opt)
	if err != nil {
		t.Fatal(err)
	}
	if added, err := st.Add(0, 5); err != nil || !added {
		t.Fatalf("solo Add under budget 1 = (%v, %v)", added, err)
	}
	if removed, err := st.Remove(0, 5); err != nil || !removed {
		t.Fatalf("solo Remove under budget 1 = (%v, %v)", removed, err)
	}
}

// alwaysAbortedStack is a weak stack under livelock-grade interference:
// every attempt aborts.
type alwaysAbortedStack struct{ attempts int }

func (a *alwaysAbortedStack) TryPush(uint64) error { a.attempts++; return repro.ErrStackAborted }
func (a *alwaysAbortedStack) TryPop() (uint64, error) {
	a.attempts++
	return 0, repro.ErrStackAborted
}

// alwaysAbortedSet is its set sibling.
type alwaysAbortedSet struct{}

func (alwaysAbortedSet) TryAdd(uint64) (bool, error)      { return false, repro.ErrSetAborted }
func (alwaysAbortedSet) TryRemove(uint64) (bool, error)   { return false, repro.ErrSetAborted }
func (alwaysAbortedSet) TryContains(uint64) (bool, error) { return false, nil }

// TestRetryBudgetDegradesGracefully drives the Figure 2 construction
// over weak objects whose every attempt aborts — the deterministic
// stand-in for unbounded interference. Container operations must
// surface repro.ErrExhausted (the public alias of core.ErrExhausted)
// after exactly the budgeted attempts; set updates shed and report
// false, with no effect either way.
func TestRetryBudgetDegradesGracefully(t *testing.T) {
	weak := &alwaysAbortedStack{}
	nb := stack.NewNonBlockingFrom[uint64](weak, nil)
	nb.SetRetryPolicy(nil, 3)
	if err := nb.Push(9); !errors.Is(err, repro.ErrExhausted) {
		t.Fatalf("exhausted Push error = %v, want repro.ErrExhausted", err)
	}
	if weak.attempts != 3 {
		t.Fatalf("Push made %d attempts, want the budget of 3", weak.attempts)
	}
	if _, err := nb.Pop(); !errors.Is(err, repro.ErrExhausted) {
		t.Fatalf("exhausted Pop error = %v, want repro.ErrExhausted", err)
	}

	ns := set.NewNonBlockingFrom(alwaysAbortedSet{}, nil)
	ns.SetRetryPolicy(nil, 2)
	if ns.Add(0, 5) {
		t.Fatal("exhausted Add reported true (claims an effect it did not have)")
	}
	if ns.Remove(0, 5) {
		t.Fatal("exhausted Remove reported true")
	}
}

// TestWithRetryPolicyConservesUnderContention hammers the budgeted
// non-blocking stack from several goroutines: however many operations
// shed with ErrExhausted, a shed push must leave nothing behind — the
// drain must recover exactly the successful pushes.
func TestWithRetryPolicyConservesUnderContention(t *testing.T) {
	const procs, per = 4, 1000 // capacity procs·per must stay under memory.MaxIndex
	s, err := repro.NewStackBackend[uint64]("non-blocking",
		repro.WithCapacity(procs*per), repro.WithRetryPolicy("none", 1))
	if err != nil {
		t.Fatal(err)
	}
	var pushed, shed sync.Map
	var wg sync.WaitGroup
	counts := make([]int, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := uint64(pid*per + i)
				switch err := s.Push(pid, v); {
				case err == nil:
					counts[pid]++
					pushed.Store(v, true)
				case errors.Is(err, repro.ErrExhausted):
					shed.Store(v, true)
				default:
					t.Errorf("Push(%d) = %v", v, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	ok := 0
	for _, c := range counts {
		ok += c
	}
	drained := 0
	for {
		v, err := s.Pop(0)
		if errors.Is(err, repro.ErrStackEmpty) {
			break
		}
		if err != nil {
			t.Fatalf("drain Pop: %v", err)
		}
		if _, was := pushed.Load(v); !was {
			t.Fatalf("drained %d, which never reported a successful push", v)
		}
		drained++
	}
	if drained != ok {
		t.Fatalf("drained %d values, want exactly the %d successful pushes (%d shed)",
			drained, ok, procs*per-ok)
	}
}

// readmeRow matches one body row of the README backend-catalog table:
// | `name` | `constructor` | object | progress | allocation | robustness | experiments |
var readmeRow = regexp.MustCompile("^\\| `([^`]+)` \\| `([^`]+)` \\| ([^|]+) \\| ([^|]+) \\| ([^|]+) \\| ([^|]+) \\| ([^|]+) \\|$")

// TestCatalogMatchesReadme keeps the README backend-catalog table and
// repro.Catalog() in lockstep, both directions: every catalog entry
// must appear in the table with exactly the catalog's constructor,
// object, progress, allocation, and experiment list — and every table
// row must name a catalog entry.
func TestCatalogMatchesReadme(t *testing.T) {
	raw, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	type row struct{ constructor, object, progress, allocation, robustness, experiments string }
	documented := map[string]row{}
	for _, line := range strings.Split(string(raw), "\n") {
		m := readmeRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		documented[m[1]] = row{m[2], strings.TrimSpace(m[3]), strings.TrimSpace(m[4]),
			strings.TrimSpace(m[5]), strings.TrimSpace(m[6]), strings.TrimSpace(m[7])}
	}
	if len(documented) == 0 {
		t.Fatal("no backend-catalog rows found in README.md (pattern drift?)")
	}
	inCatalog := map[string]bool{}
	for _, b := range repro.Catalog() {
		inCatalog[b.Name] = true
		doc, ok := documented[b.Name]
		if !ok {
			t.Errorf("catalog backend %s has no README table row", b.Name)
			continue
		}
		want := row{b.Constructor, b.Object, b.Progress, b.Allocation, b.Robustness, strings.Join(b.Experiments, " ")}
		if doc != want {
			t.Errorf("README row for %s drifted:\n  readme:  %+v\n  catalog: %+v", b.Name, doc, want)
		}
	}
	for name := range documented {
		if !inCatalog[name] {
			t.Errorf("README documents backend %s but repro.Catalog() does not export it", name)
		}
	}
}

// TestUnwrapThroughAdaptive pins the adapter contract the adaptive
// tier adds: Unwrap must reach the CURRENT rung's concrete backend, so
// optional extensions (Snapshot, combining Stats) keep working after a
// morph — stale Unwrap results are the caller's responsibility.
func TestUnwrapThroughAdaptive(t *testing.T) {
	s, err := repro.NewStackBackend[uint64]("sensitive", repro.WithAdaptive(),
		repro.WithCapacity(16), repro.WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	as, ok := s.(*repro.AdaptiveStack[uint64])
	if !ok {
		t.Fatalf("WithAdaptive did not redirect: got %T", s)
	}
	if _, ok := repro.Unwrap(s).(*repro.Stack[uint64]); !ok {
		t.Fatalf("Unwrap before morph = %T, want *repro.Stack", repro.Unwrap(s))
	}
	if err := s.Push(0, 9); err != nil {
		t.Fatal(err)
	}
	if !as.MorphTo(0, 1) {
		t.Fatal("MorphTo(combining) failed")
	}
	inner, ok := repro.Unwrap(s).(*repro.CombiningStack[uint64])
	if !ok {
		t.Fatalf("Unwrap after morph = %T, want *repro.CombiningStack", repro.Unwrap(s))
	}
	// The extension surface of the current rung works post-morph.
	if got := inner.Snapshot(); len(got) != 1 || got[0] != 9 {
		t.Fatalf("post-morph Snapshot through Unwrap = %v", got)
	}

	st, err := repro.NewSetBackend("sensitive", repro.WithAdaptive(), repro.WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Add(0, 3); err != nil {
		t.Fatal(err)
	}
	aset, ok := repro.Unwrap(st).(*repro.AdaptiveSet)
	if ok {
		t.Fatalf("full Unwrap stopped at the adaptive wrapper: %T", aset)
	}
	if _, ok := repro.Unwrap(st).(*repro.AbortableSet); !ok {
		t.Fatalf("set Unwrap on cow rung = %T", repro.Unwrap(st))
	}
	var hop any = st
	for {
		if a, ok2 := hop.(*repro.AdaptiveSet); ok2 {
			a.MorphTo(0, 2)
			break
		}
		u, ok2 := hop.(repro.Unwrapper)
		if !ok2 {
			t.Fatal("no adaptive layer found under the set adapter")
		}
		hop = u.Unwrap()
	}
	hs, ok := repro.Unwrap(st).(*repro.HashSet)
	if !ok {
		t.Fatalf("set Unwrap after morph = %T, want *repro.HashSet", repro.Unwrap(st))
	}
	if got := hs.Snapshot(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("post-morph set Snapshot through Unwrap = %v", got)
	}
}

// TestUnwrapForwardingMultiHop walks every multi-hop adapter chain the
// options constructors can assemble — WithPooled redirects and the
// adaptive wrappers — one Unwrap hop at a time: each layer must
// implement Unwrapper (or be the concrete backend), with no chain
// silently truncated.
func TestUnwrapForwardingMultiHop(t *testing.T) {
	build := []struct {
		name string
		x    func() (any, error)
		want string
	}{
		{"stack treiber pooled", func() (any, error) {
			return repro.NewStackBackend[uint64]("treiber", repro.WithPooled(), repro.WithProcs(2))
		}, "*stack.TreiberPooled"},
		{"stack combining pooled", func() (any, error) {
			return repro.NewStackBackend[uint64]("combining", repro.WithPooled(), repro.WithProcs(2))
		}, "*stack.Combining[uint64]"},
		{"queue combining pooled", func() (any, error) {
			return repro.NewQueueBackend[uint64]("combining", repro.WithPooled(), repro.WithProcs(2))
		}, "*queue.Combining[uint64]"},
		{"stack adaptive", func() (any, error) {
			return repro.NewStackBackend[uint64]("adaptive", repro.WithProcs(2))
		}, "*stack.Sensitive[uint64]"},
		{"queue adaptive", func() (any, error) {
			return repro.NewQueueBackend[uint64]("sensitive", repro.WithAdaptive(), repro.WithProcs(2))
		}, "*queue.Sensitive[uint64]"},
		{"set adaptive", func() (any, error) {
			return repro.NewSetBackend("adaptive", repro.WithProcs(2))
		}, "*set.Abortable"},
	}
	for _, tc := range build {
		x, err := tc.x()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		// Every hop must make progress and terminate at the concrete type.
		hops := 0
		for cur := x; ; hops++ {
			if hops > 8 {
				t.Fatalf("%s: unwrap chain does not terminate", tc.name)
			}
			u, ok := cur.(repro.Unwrapper)
			if !ok {
				break
			}
			next := u.Unwrap()
			if next == cur {
				t.Fatalf("%s: Unwrap hop returned itself", tc.name)
			}
			cur = next
		}
		got := typeName(repro.Unwrap(x))
		if got != tc.want {
			t.Errorf("%s: Unwrap = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func typeName(x any) string { return fmt.Sprintf("%T", x) }

// TestAdaptiveStatsOf checks the layer-aware stats walk and that
// WithThresholds reaches the constructor: forcing thresholds must
// yield migrations through the plain catalog surface.
func TestAdaptiveStatsOf(t *testing.T) {
	q, err := repro.NewQueueBackend[uint64]("adaptive",
		repro.WithThresholds(repro.ForcingThresholds()), repro.WithShards(1),
		repro.WithCapacity(32), repro.WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		if err := q.Enqueue(0, i); err != nil {
			t.Fatal(err)
		}
		if _, err := q.Dequeue(0); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := repro.AdaptiveStatsOf(q)
	if !ok {
		t.Fatal("AdaptiveStatsOf found no adaptive layer")
	}
	if st.Migrations == 0 {
		t.Fatalf("no migrations under forcing thresholds: %+v", st)
	}
	if _, ok := repro.AdaptiveStatsOf(repro.NewStack[int](4, 1)); ok {
		t.Fatal("AdaptiveStatsOf reported an adaptive layer on a fixed backend")
	}
}

// TestAdaptiveSetRetryPolicyIsLayerAware pins the applyRetryPolicy
// fix: the adaptive set's own cow-rung retry loop must receive
// WithRetryPolicy instead of the option being forwarded past it to
// the rung underneath.
func TestAdaptiveSetRetryPolicyIsLayerAware(t *testing.T) {
	st, err := repro.NewSetBackend("adaptive", repro.WithRetryPolicy("backoff", 5), repro.WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	var hop any = st
	for {
		if a, ok := hop.(*repro.AdaptiveSet); ok {
			m, budget := a.RetryPolicy()
			if m == nil || budget != 5 {
				t.Fatalf("adaptive set retry policy = (%v, %d), want (backoff, 5)", m, budget)
			}
			return
		}
		u, ok := hop.(repro.Unwrapper)
		if !ok {
			t.Fatal("no adaptive layer under the set adapter")
		}
		hop = u.Unwrap()
	}
}
