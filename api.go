package repro

import (
	"repro/internal/adaptive"
	"repro/internal/cmanager"
	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/set"
)

// This file is the uniform face of the backend catalog: one
// capability-typed operation interface per object kind, the
// functional options every catalog constructor understands, and the
// thin adapters that close the gaps between backends (pid-less
// baselines, Try*-shaped weak objects, error-less pooled methods).
// See catalog.go for the descriptors and the options constructors.

// StackAPI is the one stack contract every backend in the catalog
// implements: LIFO push/pop taking the calling process identity
// (pids in [0, n); pid-oblivious backends ignore it). Push reports
// ErrStackFull on a full bounded stack; Pop reports ErrStackEmpty.
// Backends whose entry is Weak make single attempts that may
// additionally return ErrStackAborted under interference (with no
// effect); all other backends retry or serialize internally and
// never surface an abort.
type StackAPI[T any] interface {
	Push(pid int, v T) error
	Pop(pid int) (T, error)
}

// QueueAPI is the FIFO sibling of StackAPI: Enqueue/Dequeue with the
// same pid, bound, and abort conventions (ErrQueueFull,
// ErrQueueEmpty, ErrQueueAborted).
type QueueAPI[T any] interface {
	Enqueue(pid int, v T) error
	Dequeue(pid int) (T, error)
}

// DequeAPI is the double-ended contract over the HLM array deque
// family. Values are uint32 — the packed-word representation of the
// underlying array (see internal/deque). The error conventions
// follow StackAPI with the deque sentinels (ErrDequeFull,
// ErrDequeEmpty, ErrDequeAborted); each side reports full when its
// own sentinel supply is exhausted (the array is non-circular).
type DequeAPI interface {
	PushLeft(pid int, v uint32) error
	PushRight(pid int, v uint32) error
	PopLeft(pid int) (uint32, error)
	PopRight(pid int) (uint32, error)
}

// SetAPI is the membership contract: total add/remove/contains over
// uint64 keys. The boolean is the operation's answer (Add: newly
// inserted; Remove: was present; Contains: member). The error is nil
// on every strong backend; Weak backends make single attempts that
// may return ErrSetAborted with no effect (the boolean is then
// meaningless).
type SetAPI interface {
	Add(pid int, k uint64) (bool, error)
	Remove(pid int, k uint64) (bool, error)
	Contains(pid int, k uint64) (bool, error)
}

// options collects the settings the functional options write. Every
// catalog constructor understands the full set and ignores the knobs
// its backend does not have.
type options struct {
	capacity    int
	procs       int
	shards      int
	width       int
	pooled      bool
	adaptive    bool
	thresholds  *adaptive.Thresholds
	retryMgr    string
	retryBudget int
}

// thr resolves the adaptation thresholds an adaptive constructor uses.
func (o options) thr() adaptive.Thresholds {
	if o.thresholds != nil {
		return *o.thresholds
	}
	return adaptive.DefaultThresholds()
}

// Option configures a catalog constructor (NewStackBackend and
// siblings, or a Backend descriptor's closures).
type Option func(*options)

// applyOptions resolves opts over the defaults: capacity 1024, 8
// processes, automatic shard count, default elimination width.
func applyOptions(opts []Option) options {
	o := options{capacity: 1024, procs: 8}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithCapacity bounds the object at k elements. Backends without a
// bound (the unbounded lock-free baselines) ignore it.
func WithCapacity(k int) Option { return func(o *options) { o.capacity = k } }

// WithProcs declares the number of processes n; strong operations
// take pids in [0, n). Pid-oblivious backends ignore it.
func WithProcs(n int) Option { return func(o *options) { o.procs = n } }

// WithShards sets the stripe count of the sharded queue (0 picks
// min(n, 8)); other backends ignore it.
func WithShards(s int) Option { return func(o *options) { o.shards = s } }

// WithWidth sets the elimination stack's exchange-array width (0
// picks the default); other backends ignore it.
func WithWidth(w int) Option { return func(o *options) { o.width = w } }

// WithPooled redirects a constructor to the named backend's pooled
// sibling (treiber → treiber-pooled, combining → combining-pooled):
// the same object contract over recycled, sequence-tagged nodes with
// 0 steady-state allocs/op. Constructors whose backend has no pooled
// sibling report an error; already-pooled backends are unchanged.
func WithPooled() Option { return func(o *options) { o.pooled = true } }

// WithAdaptive redirects a constructor to the kind's contention-
// adaptive meta-backend (stack/adaptive and siblings): the same object
// contract served by a ladder of catalog rungs that the object morphs
// between as live contention signals cross the WithThresholds
// boundaries. Kinds without an adaptive entry (the deque) report an
// error; the adaptive backends themselves are unchanged.
func WithAdaptive() Option { return func(o *options) { o.adaptive = true } }

// WithThresholds replaces DefaultThresholds on an adaptive backend:
// when the object climbs and descends its rung ladder, and how long a
// migration window may spin for quiescence before aborting. Other
// backends ignore the option. ForcingThresholds makes every decision
// window migrate — the harness configuration that puts the epoch-gated
// handoff on every tested path.
func WithThresholds(t Thresholds) Option { return func(o *options) { o.thresholds = &t } }

// WithRetryPolicy bounds the retry loop of the non-blocking (Figure 2)
// backends: each operation makes at most budget weak attempts, paced
// by the named contention manager ("none", "yield", "spin", "backoff",
// "adaptive" — see internal/cmanager), and a fully exhausted operation
// degrades gracefully instead of spinning unboundedly — container ops
// surface ErrExhausted with no effect; set updates shed and report
// false. budget 0 keeps the paper's unbounded loop (manager pacing
// still applies). Backends without a retry loop ignore the option.
func WithRetryPolicy(manager string, budget int) Option {
	return func(o *options) { o.retryMgr, o.retryBudget = manager, budget }
}

// retryPolicied is the surface the Figure 2 backends expose for
// WithRetryPolicy (see e.g. internal/stack.NonBlocking.SetRetryPolicy).
type retryPolicied interface {
	SetRetryPolicy(m core.Manager, budget int)
}

// applyRetryPolicy forwards a WithRetryPolicy setting to the backend
// underneath the adapters, when it has a retry loop to bound. The walk
// is layer-aware — one Unwrap hop at a time, first policy surface wins
// — so a wrapper with its own retry loop (the adaptive set pacing its
// cow rung) receives the policy instead of having it skipped past to
// the rung underneath.
func applyRetryPolicy(x any, o options) {
	if o.retryMgr == "" && o.retryBudget == 0 {
		return
	}
	for {
		if rp, ok := x.(retryPolicied); ok {
			rp.SetRetryPolicy(cmanager.ByName(o.retryMgr), o.retryBudget)
			return
		}
		u, ok := x.(Unwrapper)
		if !ok {
			return
		}
		x = u.Unwrap()
	}
}

// Unwrapper is implemented by the adapter types below: Unwrap
// returns the concrete backend value behind a capability interface,
// for callers that need an optional extension the uniform contract
// does not carry (PoolStats, Snapshot, combining Stats, ...).
type Unwrapper interface{ Unwrap() any }

// Unwrap peels every adapter layer off a catalog-built object and
// returns the concrete backend underneath (or x itself when it is
// not wrapped). Assert the result for optional extensions:
//
//	s, _ := repro.NewStackBackend[uint64]("treiber", repro.WithPooled())
//	stats := repro.Unwrap(s).(interface{ PoolStats() repro.PoolStats }).PoolStats()
func Unwrap(x any) any {
	for {
		u, ok := x.(Unwrapper)
		if !ok {
			return x
		}
		x = u.Unwrap()
	}
}

// pidlessStack adapts a pid-oblivious strong stack (the Treiber,
// elimination, and Figure 2 baselines) to StackAPI.
type pidlessStack[T any, S interface {
	Push(T) error
	Pop() (T, error)
}] struct{ s S }

func (a pidlessStack[T, S]) Push(_ int, v T) error { return a.s.Push(v) }
func (a pidlessStack[T, S]) Pop(_ int) (T, error)  { return a.s.Pop() }
func (a pidlessStack[T, S]) Unwrap() any           { return a.s }

// liftStack wraps a pid-oblivious strong stack; T must be named at
// the call site (it cannot be inferred from the method set).
func liftStack[T any, S interface {
	Push(T) error
	Pop() (T, error)
}](s S) StackAPI[T] {
	return pidlessStack[T, S]{s}
}

// weakStack adapts a Figure 1 stack: the uniform Push/Pop are its
// single attempts, so ErrStackAborted can surface.
type weakStack[T any, S interface {
	TryPush(T) error
	TryPop() (T, error)
}] struct{ s S }

func (a weakStack[T, S]) Push(_ int, v T) error { return a.s.TryPush(v) }
func (a weakStack[T, S]) Pop(_ int) (T, error)  { return a.s.TryPop() }
func (a weakStack[T, S]) Unwrap() any           { return a.s }

func liftWeakStack[T any, S interface {
	TryPush(T) error
	TryPop() (T, error)
}](s S) StackAPI[T] {
	return weakStack[T, S]{s}
}

// pidlessQueue adapts a pid-oblivious strong queue (Figure 2).
type pidlessQueue[T any, Q interface {
	Enqueue(T) error
	Dequeue() (T, error)
}] struct{ q Q }

func (a pidlessQueue[T, Q]) Enqueue(_ int, v T) error { return a.q.Enqueue(v) }
func (a pidlessQueue[T, Q]) Dequeue(_ int) (T, error) { return a.q.Dequeue() }
func (a pidlessQueue[T, Q]) Unwrap() any              { return a.q }

func liftQueue[T any, Q interface {
	Enqueue(T) error
	Dequeue() (T, error)
}](q Q) QueueAPI[T] {
	return pidlessQueue[T, Q]{q}
}

// weakQueue adapts a Figure 1 queue (single attempts, may abort).
type weakQueue[T any, Q interface {
	TryEnqueue(T) error
	TryDequeue() (T, error)
}] struct{ q Q }

func (a weakQueue[T, Q]) Enqueue(_ int, v T) error { return a.q.TryEnqueue(v) }
func (a weakQueue[T, Q]) Dequeue(_ int) (T, error) { return a.q.TryDequeue() }
func (a weakQueue[T, Q]) Unwrap() any              { return a.q }

func liftWeakQueue[T any, Q interface {
	TryEnqueue(T) error
	TryDequeue() (T, error)
}](q Q) QueueAPI[T] {
	return weakQueue[T, Q]{q}
}

// msPooledQueue adapts the pooled Michael-Scott queue, whose
// unbounded Enqueue cannot fail and returns no error.
type msPooledQueue struct{ q *queue.MichaelScottPooled }

func (a msPooledQueue) Enqueue(pid int, v uint64) error { a.q.Enqueue(pid, v); return nil }
func (a msPooledQueue) Dequeue(pid int) (uint64, error) { return a.q.Dequeue(pid) }
func (a msPooledQueue) Unwrap() any                     { return a.q }

// pidlessDeque adapts the pid-oblivious retrying deque.
type pidlessDeque[D interface {
	PushLeft(uint32) error
	PushRight(uint32) error
	PopLeft() (uint32, error)
	PopRight() (uint32, error)
}] struct{ d D }

func (a pidlessDeque[D]) PushLeft(_ int, v uint32) error  { return a.d.PushLeft(v) }
func (a pidlessDeque[D]) PushRight(_ int, v uint32) error { return a.d.PushRight(v) }
func (a pidlessDeque[D]) PopLeft(_ int) (uint32, error)   { return a.d.PopLeft() }
func (a pidlessDeque[D]) PopRight(_ int) (uint32, error)  { return a.d.PopRight() }
func (a pidlessDeque[D]) Unwrap() any                     { return a.d }

// weakDeque adapts the abortable HLM deque (single attempts).
type weakDeque[D interface {
	TryPushLeft(uint32) error
	TryPushRight(uint32) error
	TryPopLeft() (uint32, error)
	TryPopRight() (uint32, error)
}] struct{ d D }

func (a weakDeque[D]) PushLeft(_ int, v uint32) error  { return a.d.TryPushLeft(v) }
func (a weakDeque[D]) PushRight(_ int, v uint32) error { return a.d.TryPushRight(v) }
func (a weakDeque[D]) PopLeft(_ int) (uint32, error)   { return a.d.TryPopLeft() }
func (a weakDeque[D]) PopRight(_ int) (uint32, error)  { return a.d.TryPopRight() }
func (a weakDeque[D]) Unwrap() any                     { return a.d }

// strongSet adapts a total, never-aborting set to SetAPI (the error
// is always nil).
type strongSet[S interface {
	Add(int, uint64) bool
	Remove(int, uint64) bool
	Contains(int, uint64) bool
}] struct{ s S }

func (a strongSet[S]) Add(pid int, k uint64) (bool, error)      { return a.s.Add(pid, k), nil }
func (a strongSet[S]) Remove(pid int, k uint64) (bool, error)   { return a.s.Remove(pid, k), nil }
func (a strongSet[S]) Contains(pid int, k uint64) (bool, error) { return a.s.Contains(pid, k), nil }
func (a strongSet[S]) Unwrap() any                              { return a.s }

func liftSet[S interface {
	Add(int, uint64) bool
	Remove(int, uint64) bool
	Contains(int, uint64) bool
}](s S) SetAPI {
	return strongSet[S]{s}
}

// weakSet adapts the abortable copy-on-write set (single attempts;
// TryContains never aborts, but keeps the uniform shape).
type weakSet struct{ s *set.Abortable }

func (a weakSet) Add(_ int, k uint64) (bool, error)      { return a.s.TryAdd(k) }
func (a weakSet) Remove(_ int, k uint64) (bool, error)   { return a.s.TryRemove(k) }
func (a weakSet) Contains(_ int, k uint64) (bool, error) { return a.s.TryContains(k) }
func (a weakSet) Unwrap() any                            { return a.s }
