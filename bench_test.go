// Benchmarks regenerating the experiment series of DESIGN.md §4 under
// testing.B. Each BenchmarkE<n> corresponds to experiment E<n>; the
// correctness experiments (E1, E2, E8, E11, E17) benchmark the measured
// operation or the checking machinery itself, the performance
// experiments mirror cmd/contbench's tables as sub-benchmarks.
//
// Run: go test -bench=. -benchmem
package repro_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro"
	"repro/internal/bench"
	"repro/internal/cmanager"
	"repro/internal/lock"
	"repro/internal/memory"
	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/stack"
	"repro/internal/workload"
)

// BenchmarkE1AccessCount measures the contention-free strong
// operation pair (push+pop) and reports Theorem 1's shared-access
// count alongside the wall-clock cost.
func BenchmarkE1AccessCount(b *testing.B) {
	b.ReportAllocs()
	for _, backend := range []string{"boxed", "packed"} {
		b.Run(backend, func(b *testing.B) {
			b.ReportAllocs()
			var st memory.Stats
			var push func(v uint64) error
			var pop func() (uint64, error)
			switch backend {
			case "boxed":
				s := stack.NewSensitiveObserved[uint64](16, 1, &st)
				push = func(v uint64) error { return s.Push(0, v) }
				pop = func() (uint64, error) { return s.Pop(0) }
			case "packed":
				weak := stack.NewPackedObserved(16, &st)
				s := stack.NewSensitiveFromObserved[uint32](weak, lock.NewRoundRobin(lock.NewTAS(), 1), &st)
				push = func(v uint64) error { return s.Push(0, uint32(v)) }
				pop = func() (uint64, error) { v, err := s.Pop(0); return uint64(v), err }
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := push(uint64(i)); err != nil {
					b.Fatal(err)
				}
				if _, err := pop(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(st.Total())/float64(2*b.N), "accesses/op")
		})
	}
}

// BenchmarkE2WeakSolo measures the uncontended weak operation (the
// paper's five-access attempt) on both backends.
func BenchmarkE2WeakSolo(b *testing.B) {
	b.ReportAllocs()
	b.Run("boxed", func(b *testing.B) {
		b.ReportAllocs()
		s := stack.NewAbortable[uint64](16)
		for i := 0; i < b.N; i++ {
			if err := s.TryPush(uint64(i)); err != nil {
				b.Fatal(err)
			}
			if _, err := s.TryPop(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		s := stack.NewPacked(16)
		for i := 0; i < b.N; i++ {
			if err := s.TryPush(uint32(i)); err != nil {
				b.Fatal(err)
			}
			if _, err := s.TryPop(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// parallelStack drives a pid-aware stack with RunParallel, reporting
// per-op cost under full contention.
func parallelStack(b *testing.B, push func(pid int, v uint64) error, pop func(pid int) (uint64, error)) {
	var pids atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		pid := int(pids.Add(1) - 1)
		rng := workload.NewRNG(uint64(pid) + 1)
		i := 0
		for pb.Next() {
			if workload.Balanced.NextIsPush(rng) {
				_ = push(pid, workload.Value(pid, i))
				i++
			} else {
				_, _ = pop(pid)
			}
		}
	})
}

// BenchmarkE3NonBlocking measures the Figure 2 retry loop on a tiny
// (high-interference) stack.
func BenchmarkE3NonBlocking(b *testing.B) {
	b.ReportAllocs()
	s := stack.NewNonBlocking[uint64](4)
	parallelStack(b,
		func(_ int, v uint64) error { return s.Push(v) },
		func(_ int) (uint64, error) { return s.Pop() })
}

// BenchmarkE4Fairness measures the Figure 3 stack under saturation and
// reports Jain's index over per-worker completions.
func BenchmarkE4Fairness(b *testing.B) {
	b.ReportAllocs()
	const maxProcs = 64
	s := stack.NewSensitive[uint64](8, maxProcs)
	counts := make([]uint64, maxProcs)
	var pids atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		pid := int(pids.Add(1)-1) % maxProcs
		rng := workload.NewRNG(uint64(pid) + 1)
		i := 0
		for pb.Next() {
			if workload.Balanced.NextIsPush(rng) {
				_ = s.Push(pid, workload.Value(pid, i))
				i++
			} else {
				_, _ = s.Pop(pid)
			}
			counts[pid]++
		}
	})
	active := counts[:0:0]
	for _, c := range counts {
		if c > 0 {
			active = append(active, c)
		}
	}
	if len(active) > 0 {
		var sum, sumSq float64
		for _, c := range active {
			sum += float64(c)
			sumSq += float64(c) * float64(c)
		}
		b.ReportMetric(sum*sum/(float64(len(active))*sumSq), "jain")
	}
}

// BenchmarkE5Throughput sweeps the E5 implementation set under
// RunParallel; use -cpu to sweep parallelism.
func BenchmarkE5Throughput(b *testing.B) {
	b.ReportAllocs()
	const k, maxProcs = 1024, 64
	impls := []struct {
		name string
		mk   func() (func(int, uint64) error, func(int) (uint64, error))
	}{
		{"lock-mutex", func() (func(int, uint64) error, func(int) (uint64, error)) {
			s := stack.NewLockBased[uint64](k)
			return s.Push, s.Pop
		}},
		{"lock-ticket", func() (func(int, uint64) error, func(int) (uint64, error)) {
			s := stack.NewLockBasedWith[uint64](k, lock.IgnorePid(lock.NewTicket()))
			return s.Push, s.Pop
		}},
		{"treiber", func() (func(int, uint64) error, func(int) (uint64, error)) {
			s := stack.NewTreiber[uint64]()
			return func(_ int, v uint64) error { return s.Push(v) },
				func(_ int) (uint64, error) { return s.Pop() }
		}},
		{"non-blocking", func() (func(int, uint64) error, func(int) (uint64, error)) {
			s := stack.NewNonBlocking[uint64](k)
			return func(_ int, v uint64) error { return s.Push(v) },
				func(_ int) (uint64, error) { return s.Pop() }
		}},
		{"cont-sensitive", func() (func(int, uint64) error, func(int) (uint64, error)) {
			s := stack.NewSensitive[uint64](k, maxProcs)
			return func(pid int, v uint64) error { return s.Push(pid%maxProcs, v) },
				func(pid int) (uint64, error) { return s.Pop(pid % maxProcs) }
		}},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			b.ReportAllocs()
			push, pop := impl.mk()
			parallelStack(b, push, pop)
		})
	}
}

// BenchmarkE6Phases contrasts the contention-sensitive stack's solo
// cost with its contended cost.
func BenchmarkE6Phases(b *testing.B) {
	b.ReportAllocs()
	b.Run("solo", func(b *testing.B) {
		b.ReportAllocs()
		s := stack.NewSensitive[uint64](1024, 1)
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				_ = s.Push(0, uint64(i))
			} else {
				_, _ = s.Pop(0)
			}
		}
	})
	b.Run("storm", func(b *testing.B) {
		b.ReportAllocs()
		const maxProcs = 64
		s := stack.NewSensitive[uint64](1024, maxProcs)
		var pids atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			pid := int(pids.Add(1)-1) % maxProcs
			i := 0
			for pb.Next() {
				if i%2 == 0 {
					_ = s.Push(pid, uint64(i))
				} else {
					_, _ = s.Pop(pid)
				}
				i++
			}
		})
	})
}

// BenchmarkE7Managers ablates the retry-loop contention managers.
func BenchmarkE7Managers(b *testing.B) {
	b.ReportAllocs()
	for _, name := range cmanager.Names() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			s := stack.NewNonBlockingFrom[uint64](stack.NewAbortable[uint64](4), cmanager.ByName(name))
			parallelStack(b,
				func(_ int, v uint64) error { return s.Push(v) },
				func(_ int) (uint64, error) { return s.Pop() })
		})
	}
}

// BenchmarkE8ModelChecker measures the deterministic scheduler's
// replay rate on the ABA schedule (schedules/s drives how large an E8
// search budget is affordable).
func BenchmarkE8ModelChecker(b *testing.B) {
	b.ReportAllocs()
	build, schedule := sched.ABASchedule(sched.Boxed)
	for i := 0; i < b.N; i++ {
		if _, err := sched.Replay(build, schedule, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Queue sweeps the queue implementations (E5's FIFO
// mirror).
func BenchmarkE9Queue(b *testing.B) {
	b.ReportAllocs()
	const k, maxProcs = 1024, 64
	impls := []struct {
		name string
		mk   func() (func(int, uint64) error, func(int) (uint64, error))
	}{
		{"lock-mutex", func() (func(int, uint64) error, func(int) (uint64, error)) {
			q := queue.NewLockBased[uint64](k)
			return q.Enqueue, q.Dequeue
		}},
		{"michael-scott", func() (func(int, uint64) error, func(int) (uint64, error)) {
			q := queue.NewMichaelScott[uint64]()
			return func(_ int, v uint64) error { q.Enqueue(v); return nil },
				func(_ int) (uint64, error) { return q.Dequeue() }
		}},
		{"non-blocking", func() (func(int, uint64) error, func(int) (uint64, error)) {
			q := queue.NewNonBlocking[uint64](k)
			return func(_ int, v uint64) error { return q.Enqueue(v) },
				func(_ int) (uint64, error) { return q.Dequeue() }
		}},
		{"cont-sensitive", func() (func(int, uint64) error, func(int) (uint64, error)) {
			q := queue.NewSensitive[uint64](k, maxProcs)
			return func(pid int, v uint64) error { return q.Enqueue(pid%maxProcs, v) },
				func(pid int) (uint64, error) { return q.Dequeue(pid % maxProcs) }
		}},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			b.ReportAllocs()
			enq, deq := impl.mk()
			parallelStack(b, enq, deq)
		})
	}
}

// BenchmarkE10Locks measures raw critical-section cost per lock,
// including the §4.4 transformation's overhead.
func BenchmarkE10Locks(b *testing.B) {
	b.ReportAllocs()
	const maxProcs = 64
	locks := []struct {
		name string
		mk   func() lock.PidLock
	}{
		{"tas", func() lock.PidLock { return lock.IgnorePid(lock.NewTAS()) }},
		{"ttas", func() lock.PidLock { return lock.IgnorePid(lock.NewTTAS()) }},
		{"backoff", func() lock.PidLock { return lock.IgnorePid(lock.NewBackoff()) }},
		{"ticket", func() lock.PidLock { return lock.IgnorePid(lock.NewTicket()) }},
		{"mutex", func() lock.PidLock { return lock.IgnorePid(lock.NewMutex()) }},
		{"tournament", func() lock.PidLock { return lock.NewTournament(maxProcs) }},
		{"rr-tas", func() lock.PidLock { return lock.NewRoundRobin(lock.NewTAS(), maxProcs) }},
	}
	for _, l := range locks {
		b.Run(l.name, func(b *testing.B) {
			b.ReportAllocs()
			lk := l.mk()
			var shared uint64
			var pids atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				pid := int(pids.Add(1)-1) % maxProcs
				for pb.Next() {
					lk.Acquire(pid)
					shared++
					lk.Release(pid)
				}
			})
		})
	}
}

// BenchmarkE12FastMutex measures Lamport's fast mutex solo (the
// 7-access fast path) and contended.
func BenchmarkE12FastMutex(b *testing.B) {
	b.ReportAllocs()
	b.Run("solo", func(b *testing.B) {
		b.ReportAllocs()
		l := lock.NewFastMutex(8)
		for i := 0; i < b.N; i++ {
			l.Acquire(0)
			l.Release(0)
		}
	})
	b.Run("contended", func(b *testing.B) {
		b.ReportAllocs()
		const maxProcs = 64
		l := lock.NewFastMutex(maxProcs)
		var pids atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			pid := int(pids.Add(1)-1) % maxProcs
			for pb.Next() {
				l.Acquire(pid)
				l.Release(pid)
			}
		})
	})
}

// BenchmarkE13CrashReplay measures the crash-injection replay rate
// (how many §5 crash scenarios per second the scheduler can sweep).
func BenchmarkE13CrashReplay(b *testing.B) {
	b.ReportAllocs()
	survivor := []sched.StackOp{{Push: true, Value: 1}, {Push: false}}
	for i := 0; i < b.N; i++ {
		build, crashes := sched.CrashPush(sched.Boxed, 8, nil, 77, 3, survivor)
		if _, err := sched.ReplayWithCrashes(build, []int{0, 0, 0}, crashes, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14Deque measures the deque tower under both-end traffic.
func BenchmarkE14Deque(b *testing.B) {
	b.ReportAllocs()
	b.Run("non-blocking", func(b *testing.B) {
		b.ReportAllocs()
		nb := repro.NewNonBlockingDeque(1024)
		var pids atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			pid := int(pids.Add(1) - 1)
			i := 0
			for pb.Next() {
				if (pid+i)%2 == 0 {
					_ = nb.PushRight(uint32(i))
				} else {
					_, _ = nb.PopLeft()
				}
				i++
			}
		})
	})
	b.Run("cont-sensitive", func(b *testing.B) {
		b.ReportAllocs()
		const maxProcs = 64
		d := repro.NewDeque(1024, maxProcs)
		var pids atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			pid := int(pids.Add(1)-1) % maxProcs
			i := 0
			for pb.Next() {
				if (pid+i)%2 == 0 {
					_ = d.PushRight(pid, uint32(i))
				} else {
					_, _ = d.PopLeft(pid)
				}
				i++
			}
		})
	})
}

// BenchmarkE11Checker measures linearizability-checking throughput on
// freshly recorded histories.
func BenchmarkE11Checker(b *testing.B) {
	b.ReportAllocs()
	tgt := bench.LinTargets()[0] // stack/abortable
	b.ResetTimer()
	opsChecked := 0
	for i := 0; i < b.N; i++ {
		n, _, res := bench.RunLin(tgt, 4, 10, 4, uint64(i)+1)
		if !res.Ok {
			b.Fatalf("violation: %+v", res)
		}
		opsChecked += n
	}
	b.ReportMetric(float64(opsChecked)/float64(b.N), "ops-checked/iter")
}

// BenchmarkPublicAPI keeps the facade honest: the exported
// constructors must not add overhead over the internal ones.
func BenchmarkPublicAPI(b *testing.B) {
	b.ReportAllocs()
	s := repro.NewStack[int](1024, 1)
	for i := 0; i < b.N; i++ {
		if err := s.Push(0, i); err != nil && !errors.Is(err, repro.ErrStackFull) {
			b.Fatal(err)
		}
		if _, err := s.Pop(0); err != nil && !errors.Is(err, repro.ErrStackEmpty) {
			b.Fatal(err)
		}
	}
}

// BenchmarkE17AllocFree mirrors experiment E17 under testing.B: the
// boxed hot paths allocate per operation, the pooled ones must report
// 0 allocs/op (the -benchmem column is the acceptance bar).
func BenchmarkE17AllocFree(b *testing.B) {
	b.Run("treiber-boxed", func(b *testing.B) {
		b.ReportAllocs()
		s := stack.NewTreiber[uint64]()
		for i := 0; i < b.N; i++ {
			_ = s.Push(uint64(i))
			_, _ = s.Pop()
		}
	})
	b.Run("treiber-pooled", func(b *testing.B) {
		b.ReportAllocs()
		s := stack.NewTreiberPooled(1)
		for i := 0; i < b.N; i++ {
			_ = s.Push(0, uint64(i))
			_, _ = s.Pop(0)
		}
	})
	b.Run("michael-scott-boxed", func(b *testing.B) {
		b.ReportAllocs()
		q := queue.NewMichaelScott[uint64]()
		for i := 0; i < b.N; i++ {
			q.Enqueue(uint64(i))
			_, _ = q.Dequeue()
		}
	})
	b.Run("michael-scott-pooled", func(b *testing.B) {
		b.ReportAllocs()
		q := queue.NewMichaelScottPooled(1)
		for i := 0; i < b.N; i++ {
			q.Enqueue(0, uint64(i))
			_, _ = q.Dequeue(0)
		}
	})
	b.Run("abortable-pooled", func(b *testing.B) {
		b.ReportAllocs()
		s := stack.NewAbortablePooled(16, 1)
		for i := 0; i < b.N; i++ {
			_ = s.TryPush(0, uint64(i))
			_, _ = s.TryPop(0)
		}
	})
	b.Run("combining-pooled", func(b *testing.B) {
		b.ReportAllocs()
		s := stack.NewCombiningPooled(16, 1)
		for i := 0; i < b.N; i++ {
			_ = s.Push(0, uint64(i))
			_, _ = s.Pop(0)
		}
	})
}

// BenchmarkE19SetAtRange mirrors experiment E19 under testing.B: a
// solo read-mostly loop (3 Contains, 1 Add, 1 Remove per iteration)
// over a resident population of the given size. The Harris rows grow
// linearly with the range — every operation walks the sorted prefix —
// while the split-ordered hash rows stay flat: the bucket index caps
// the expected walk at the load factor. Both run the same pooled
// recycled-node engine, so the allocs/op column stays at the pool's
// steady-state zero on both.
func BenchmarkE19SetAtRange(b *testing.B) {
	for _, tc := range []struct {
		name  string
		build func() (add func(int, uint64) bool, remove func(int, uint64) bool, contains func(int, uint64) bool)
	}{
		{"harris", func() (func(int, uint64) bool, func(int, uint64) bool, func(int, uint64) bool) {
			s := repro.NewLockFreeSet(1)
			return s.Add, s.Remove, s.Contains
		}},
		{"hash", func() (func(int, uint64) bool, func(int, uint64) bool, func(int, uint64) bool) {
			s := repro.NewHashSet(1)
			return s.Add, s.Remove, s.Contains
		}},
	} {
		for _, keys := range []uint64{64, 4096} {
			b.Run(fmt.Sprintf("%s/keys=%d", tc.name, keys), func(b *testing.B) {
				b.ReportAllocs()
				add, remove, contains := tc.build()
				for k := uint64(0); k < keys; k += 2 {
					add(0, k)
				}
				rng := workload.NewRNG(0x5eed)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k := uint64(rng.Intn(int(keys)))
					contains(0, k)
					contains(0, (k+1)%keys)
					contains(0, (k+2)%keys)
					add(0, k)
					remove(0, (k+3)%keys)
				}
			})
		}
	}
}
