// Command soak runs the long-running fault-injected soak service over
// catalog backends: open-loop session traffic (Poisson arrivals,
// geometric session lengths, exponential think times) supervised by a
// seeded fault plan (mid-op crashes, combiner kills, slow-process
// stalls, forced adaptive morphs), a per-pid heartbeat watchdog, and
// a quiescence-free leak/conservation audit, with windowed metrics
// rows streamed as it goes.
//
// Usage:
//
//	soak [-backends a,b,...] [-duration D] [-window W] [-workers N] [-seed S] [-quick] [-json path]
//
// Each backend soaks for -duration (default 60s; -quick compresses to
// ~12s per backend for the CI smoke). SIGTERM or SIGINT triggers the
// graceful lifecycle: arrivals stop, in-flight operations flush, the
// drain-time conservation audit runs, and the rows collected so far
// are still written and judged. With -json, the windowed rows are
// written as a provenance-stamped bench.Doc under experiment E24 with
// the "E24 soak suite" table — the document cmd/slogate -exp E24
// gates. The exit status reflects the verdicts: 0 when every gate
// holds (the full strict set after a completed run, the invariant
// subset after an interrupted one), 1 on any failure, 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/soak"
)

func main() {
	var (
		backends = flag.String("backends", strings.Join(soak.DefaultBackends(), ","),
			"comma-separated catalog backends to soak")
		duration = flag.Duration("duration", 60*time.Second, "traffic duration per backend")
		window   = flag.Duration("window", 0, "metrics window (0 = duration/10, clamped)")
		workers  = flag.Int("workers", 0, "session lanes per backend (0 = default)")
		seed     = flag.Uint64("seed", 0, "workload seed (0 = default)")
		quick    = flag.Bool("quick", false, "compress the run (~12s per backend, the CI smoke)")
		jsonPath = flag.String("json", "", "write rows as a bench.Doc (E24) to this path")
	)
	flag.Parse()
	os.Exit(run(*backends, *duration, *window, *workers, *seed, *quick, *jsonPath))
}

func run(backends string, duration, window time.Duration, workers int, seed uint64, quick bool, jsonPath string) int {
	cfg := soak.Config{
		Duration: duration,
		Window:   window,
		Workers:  workers,
		Seed:     seed,
		Log:      os.Stderr,
	}
	if quick {
		cfg.Duration = 12 * time.Second
		if window == 0 {
			cfg.Window = 2 * time.Second
		}
		if workers == 0 {
			cfg.Workers = 6
		}
	}

	byName := map[string]repro.Backend{}
	for _, b := range repro.Catalog() {
		byName[b.Name] = b
	}
	var targets []repro.Backend
	for _, name := range strings.Split(backends, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "soak: unknown backend %q (see repro.Catalog / README)\n", name)
			return 2
		}
		targets = append(targets, b)
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "soak: no backends selected")
		return 2
	}

	// The graceful lifecycle: the first SIGTERM/SIGINT stops arrivals
	// on the backend currently soaking (and skips the rest); a second
	// signal restores default handling, so a stuck drain can still be
	// killed.
	stop := make(chan struct{})
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "soak: %v — draining (signal again to kill)\n", s)
		interrupted.Store(true)
		close(stop)
		signal.Stop(sigc)
	}()
	cfg.Stop = stop

	start := time.Now()
	var all []soak.Row
	for _, b := range targets {
		select {
		case <-stop:
		default:
			win := "auto"
			if cfg.Window > 0 {
				win = cfg.Window.String()
			}
			fmt.Fprintf(os.Stderr, "soak: %s for %v (window %s, %d faults planned)\n",
				b.Name, cfg.Duration, win, len(soak.DefaultFaultPlan()))
			all = append(all, soak.Run(b, cfg)...)
		}
	}
	signal.Stop(sigc)

	// An interrupted run is judged on the invariant gates only: the
	// strict coverage and fault floors cannot be demanded of a clock
	// that was cut short. A completed run gets the full E24 contract.
	strict := !interrupted.Load()
	verdicts := soak.Evaluate(all, strict)

	fmt.Printf("%s\n", soak.Table(all))
	vt := metrics.NewTable("scenario", "backend", "gate", "observed", "bound", "verdict")
	failed := 0
	for _, v := range verdicts {
		verdict := "ok"
		if !v.OK {
			verdict = "FAIL"
			failed++
		}
		vt.AddRow(v.Scenario, v.Backend, v.Gate, v.Observed, v.Bound, verdict)
	}
	fmt.Printf("%s\n", vt)

	if jsonPath != "" {
		if err := writeJSON(jsonPath, cfg, quick, failed, all, time.Since(start)); err != nil {
			fmt.Fprintf(os.Stderr, "soak: writing %s: %v\n", jsonPath, err)
			return 2
		}
	}
	mode := "strict"
	if !strict {
		mode = "interrupted (invariant gates only)"
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "soak: %d gate(s) failed [%s]\n", failed, mode)
		return 1
	}
	fmt.Fprintf(os.Stderr, "soak: all gates hold [%s]\n", mode)
	return 0
}

// writeJSON wraps the rows as a provenance-stamped bench.Doc under
// experiment E24 — the same document shape contbench -json emits, so
// cmd/slogate and the BENCH_*.json trajectory tooling consume soak
// artifacts unchanged.
func writeJSON(path string, cfg soak.Config, quick bool, failed int, rows []soak.Row, elapsed time.Duration) error {
	e24, _ := bench.ByID("E24")
	tb := soak.Table(rows)
	doc := bench.Doc{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Provenance: bench.CollectProvenance(),
		Procs:      cfg.Workers,
		DurationMS: float64(cfg.Duration.Microseconds()) / 1000,
		Quick:      quick,
		Seed:       cfg.Seed,
		Failed:     failed,
		Experiment: []bench.ExperimentResult{{
			ID:         "E24",
			Title:      e24.Title,
			Claim:      e24.Claim,
			Passed:     failed == 0,
			DurationMS: float64(elapsed.Microseconds()) / 1000,
			Tables: []bench.TableResult{{
				Caption: "E24 soak suite",
				Headers: tb.Headers(),
				Rows:    tb.Rows(),
			}},
		}},
	}
	return doc.WriteFile(path)
}
