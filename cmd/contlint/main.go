// Contlint is the multichecker for the repo's static-enforcement
// suite (internal/analysis): the concurrency house rules — mixed
// atomic/plain field access, tagged-register copies, pid plumbing,
// naked retry loops, experiment-registry hygiene, plus the offline
// stand-ins for vet's unusedwrite and nilness — checked over whole
// package patterns.
//
// Standalone (what CI's lint job runs):
//
//	go run ./cmd/contlint ./...
//
// prints file:line:col: [pass] message for every finding and exits 1
// if there are any. -list prints the suite and exits.
//
// As a vet tool, over the unit-checker protocol (which also covers
// *_test.go files, since vet analyzes test compilations):
//
//	go build -o bin/contlint ./cmd/contlint
//	go vet -vettool=bin/contlint ./...
//
// Suppressions use //contlint:allow <pass> <reason> on (or directly
// above) the offending line; stale or malformed suppressions are
// themselves diagnostics (pass allowlint).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// selfHash content-hashes the running binary for the -V=full buildID.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func main() {
	args := os.Args[1:]

	// The go vet handshake: `-V=full` must print a single version line
	// the go command can hash into its build cache key, and `-flags`
	// must describe the tool's flags (contlint has none it needs vet
	// to forward).
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// A "devel" version must carry a buildID the go command can
		// hash into its cache key; content-hash the binary itself so
		// rebuilding the tool invalidates stale vet results.
		fmt.Printf("%s version devel buildID=%s\n", filepath.Base(os.Args[0]), selfHash())
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && args[0] == "-list" {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args))
}

// standalone loads the packages matching patterns and runs the whole
// suite, allowlint included.
func standalone(patterns []string) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "contlint:", err)
		return 2
	}
	bad := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, analysis.Suite(), true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "contlint:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(analysis.FormatDiagnostic(pkg.Fset, d))
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "contlint: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON configuration the go command hands a
// -vettool for each package unit (x/tools' unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package unit per the vet protocol: type-check
// the unit's files against the export data the go command already
// compiled, run the suite, print findings, and write the (empty) facts
// file vet expects. Exit 0 means clean, 1 a tool error, 2 diagnostics.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "contlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "contlint: parsing vet config:", err)
		return 1
	}

	fset := token.NewFileSet()
	imp := analysis.ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := analysis.CheckFiles(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		fmt.Fprintln(os.Stderr, "contlint:", err)
		return 1
	}

	var diags []analysis.Diagnostic
	if !cfg.VetxOnly {
		diags, err = analysis.RunPackage(pkg, analysis.Suite(), true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "contlint:", err)
			return 1
		}
	}
	if code := writeVetx(cfg); code != 0 {
		return code
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, analysis.FormatDiagnostic(pkg.Fset, d))
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// writeVetx writes the facts file the go command caches for downstream
// units. Contlint exports no cross-package facts, so it is empty.
func writeVetx(cfg vetConfig) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "contlint:", err)
		return 1
	}
	return 0
}
