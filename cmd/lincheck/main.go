// Command lincheck records concurrent histories of the stack, queue,
// and set implementations and checks them for linearizability (the
// paper's safety condition, §1.1) against sequential models.
//
// The target set is not maintained here: every backend in
// repro.Catalog() is checked through its capability interface (via
// internal/bench's catalog-driven LinTargets/SetLinTargets), plus the
// internal-only packed/pooled variants the catalog does not export.
// A backend added to the catalog is picked up automatically.
//
// Usage:
//
//	lincheck [-impl all|<name from -listimpls>] [-procs N] [-rounds R] [-ops K] [-seeds S]
//
// Histories are recorded in bursts with quiescent joins so the
// segmented Wing&Gong checker stays exact. Exit status 1 means a
// violation was found.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	lin "repro/internal/linearizability"
	"repro/internal/metrics"
)

func main() {
	var (
		impl   = flag.String("impl", "all", "implementation name (see -listimpls) or 'all'")
		procs  = flag.Int("procs", 4, "recording processes")
		rounds = flag.Int("rounds", 60, "bursts per seed")
		ops    = flag.Int("ops", 4, "operations per process per burst")
		seeds  = flag.Int("seeds", 4, "independent seeded runs per implementation")
		listI  = flag.Bool("listimpls", false, "list implementations and exit")
	)
	flag.Parse()

	targets := bench.LinTargets()
	setTargets := bench.SetLinTargets()
	if *listI {
		for _, t := range targets {
			fmt.Println(t.Name)
		}
		for _, t := range setTargets {
			fmt.Println(t.Name)
		}
		return
	}

	violations := 0
	tb := metrics.NewTable("implementation", "seed", "ops checked", "aborts dropped", "states", "verdict")
	// report classifies one seeded run and prints a violation's segment.
	report := func(name string, seed, n, aborts int, res lin.Result) {
		verdict := "linearizable"
		switch {
		case res.Exhausted:
			verdict = "UNDECIDED (budget)"
		case !res.Ok:
			verdict = "VIOLATION"
			violations++
		}
		tb.AddRow(name, seed, n, aborts, res.States, verdict)
		if !res.Ok && !res.Exhausted {
			fmt.Fprintf(os.Stderr, "violation in %s (seed %d); offending segment:\n", name, seed)
			for _, op := range res.FailedSegment {
				fmt.Fprintf(os.Stderr, "  %v\n", op)
			}
		}
	}
	for _, tgt := range targets {
		if *impl != "all" && *impl != tgt.Name {
			continue
		}
		for seed := 1; seed <= *seeds; seed++ {
			n, aborts, res := bench.RunLin(tgt, *procs, *rounds, *ops, uint64(seed)*0x9e37)
			report(tgt.Name, seed, n, aborts, res)
		}
	}
	for _, tgt := range setTargets {
		if *impl != "all" && *impl != tgt.Name {
			continue
		}
		for seed := 1; seed <= *seeds; seed++ {
			n, aborts, res := bench.RunSetLin(tgt, *procs, *rounds, *ops, uint64(seed)*0x9e37)
			report(tgt.Name, seed, n, aborts, res)
		}
	}
	fmt.Print(tb.String())
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "lincheck: %d violation(s)\n", violations)
		os.Exit(1)
	}
}
