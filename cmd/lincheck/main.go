// Command lincheck records concurrent histories of the stack, queue,
// and set implementations and checks them for linearizability (the
// paper's safety condition, §1.1) against sequential models.
//
// The target set is not maintained here: every backend in
// repro.Catalog() is checked through its capability interface (via
// internal/bench's catalog-driven LinTargets/SetLinTargets), plus the
// internal-only packed/pooled variants the catalog does not export.
// A backend added to the catalog is picked up automatically.
//
// Usage:
//
//	lincheck [-impl all|<name from -listimpls>] [-procs N] [-rounds R] [-ops K] [-seeds S]
//	lincheck -crash
//
// Histories are recorded in bursts with quiescent joins so the
// segmented Wing&Gong checker stays exact. Exit status 1 means a
// violation was found.
//
// -crash switches to the deterministic §5 crash-plan mode: instead of
// timing-driven recordings, the internal/sched engine replays runs in
// which one process is crashed at every numbered shared access of its
// operation (the crash plans are replayable values, like the ABA
// schedules). The crashed operation is treated as pending — the
// history must linearize either without it or with some completion of
// it taking effect — and the flat-combining sweep additionally covers
// crashes with the combiner lease held, which the survivors must
// recover from by stealing the lease.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	lin "repro/internal/linearizability"
	"repro/internal/metrics"
	"repro/internal/sched"
)

func main() {
	var (
		impl   = flag.String("impl", "all", "implementation name (see -listimpls) or 'all'")
		procs  = flag.Int("procs", 4, "recording processes")
		rounds = flag.Int("rounds", 60, "bursts per seed")
		ops    = flag.Int("ops", 4, "operations per process per burst")
		seeds  = flag.Int("seeds", 4, "independent seeded runs per implementation")
		listI  = flag.Bool("listimpls", false, "list implementations and exit")
		crash  = flag.Bool("crash", false, "deterministic crash-plan sweeps (crashed ops pending)")
	)
	flag.Parse()

	if *crash {
		if err := runCrashSweeps(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "lincheck -crash: %v\n", err)
			os.Exit(1)
		}
		return
	}

	targets := bench.LinTargets()
	setTargets := bench.SetLinTargets()
	if *listI {
		for _, t := range targets {
			fmt.Println(t.Name)
		}
		for _, t := range setTargets {
			fmt.Println(t.Name)
		}
		return
	}

	violations := 0
	tb := metrics.NewTable("implementation", "seed", "ops checked", "aborts dropped", "states", "verdict")
	// report classifies one seeded run and prints a violation's segment.
	report := func(name string, seed, n, aborts int, res lin.Result) {
		verdict := "linearizable"
		switch {
		case res.Exhausted:
			verdict = "UNDECIDED (budget)"
		case !res.Ok:
			verdict = "VIOLATION"
			violations++
		}
		tb.AddRow(name, seed, n, aborts, res.States, verdict)
		if !res.Ok && !res.Exhausted {
			fmt.Fprintf(os.Stderr, "violation in %s (seed %d); offending segment:\n", name, seed)
			for _, op := range res.FailedSegment {
				fmt.Fprintf(os.Stderr, "  %v\n", op)
			}
		}
	}
	for _, tgt := range targets {
		if *impl != "all" && *impl != tgt.Name {
			continue
		}
		for seed := 1; seed <= *seeds; seed++ {
			n, aborts, res := bench.RunLin(tgt, *procs, *rounds, *ops, uint64(seed)*0x9e37)
			report(tgt.Name, seed, n, aborts, res)
		}
	}
	for _, tgt := range setTargets {
		if *impl != "all" && *impl != tgt.Name {
			continue
		}
		for seed := 1; seed <= *seeds; seed++ {
			n, aborts, res := bench.RunSetLin(tgt, *procs, *rounds, *ops, uint64(seed)*0x9e37)
			report(tgt.Name, seed, n, aborts, res)
		}
	}
	fmt.Print(tb.String())
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "lincheck: %d violation(s)\n", violations)
		os.Exit(1)
	}
}

// runCrashSweeps is the -crash mode: deterministic crash plans over
// the model-checked backends, every crash point of a single push and
// a single pop, plus the flat-combining lease-held crashes.
func runCrashSweeps(w *os.File) error {
	tb := metrics.NewTable("target", "crashed op", "crash points", "verdict")
	survivor := []sched.StackOp{{Push: true, Value: 100}, {}, {}, {}}
	const points = 8
	for _, backend := range []sched.StackBackend{sched.Boxed, sched.PackedWords, sched.PooledTreiber, sched.PooledAbortable} {
		for _, op := range []sched.StackOp{{Push: true, Value: 77}, {}} {
			name := "pop"
			if op.Push {
				name = "push"
			}
			err := sched.SweepCrashPoints(points, func(crashAt int) (sched.Builder, sched.CrashPlan) {
				return sched.CrashStackOp(backend, 8, []uint64{10, 20}, op, crashAt, survivor)
			})
			if err != nil {
				fmt.Fprint(w, tb.String())
				return fmt.Errorf("%v crashed %s: %v", backend, name, err)
			}
			tb.AddRow(backend.String(), name, points+1, "linearizable (crashed op pending)")
		}
	}

	// Flat combining: the combiner dies at every gate of its
	// contended push — lease acquisition, CONTENTION raise, mid-
	// apply, release — and the survivor must steal the lease.
	err := sched.SweepCrashPoints(sched.CombiningCrashGates, func(crashAt int) (sched.Builder, sched.CrashPlan) {
		return sched.CombiningCrashBuilder(false), sched.CrashPlan{0: crashAt}
	})
	if err != nil {
		fmt.Fprint(w, tb.String())
		return fmt.Errorf("combining crash sweep: %v", err)
	}
	tb.AddRow("stack/combining", "push (combiner)", sched.CombiningCrashGates+1, "linearizable (crashed op pending)")

	build, schedule, plan := sched.CombiningTakeoverSchedule()
	if _, err := sched.ReplayWithCrashes(build, schedule, plan, 0); err != nil {
		fmt.Fprint(w, tb.String())
		return fmt.Errorf("pinned takeover replay: %v", err)
	}
	tb.AddRow("stack/combining", "push (lease-held, pinned)", 1, "lease stolen, linearizable")

	// Adaptive set: the migrator dies at every gate of its cow→harris
	// window — before the open, between open and seal, mid-rebuild, at
	// the close — and the survivor must finish with nothing stranded.
	if err := sched.SweepCrashPoints(sched.AdaptiveMigrationGates+1, sched.CrashAdaptiveMigration); err != nil {
		fmt.Fprint(w, tb.String())
		return fmt.Errorf("adaptive migration crash sweep: %v", err)
	}
	tb.AddRow("set/adaptive", "morph (migrator)", sched.AdaptiveMigrationGates+2, "survivors complete, linearizable")

	mbuild, msched := sched.AdaptiveMigrationSchedule()
	if _, err := sched.Replay(mbuild, msched, 0); err != nil {
		fmt.Fprint(w, tb.String())
		return fmt.Errorf("pinned migration replay: %v", err)
	}
	tb.AddRow("set/adaptive", "add (parked across flip, pinned)", 1, "stale CAS fails, re-dispatched")

	fmt.Fprint(w, tb.String())
	fmt.Fprintln(w, "crash plans are replayable values: (pid -> granted shared accesses before the crash)")
	return nil
}
