// Command contbench runs the reproduction experiments (E1..E24,
// including the E15/E16 scaling tier, the E17 allocation tier, the
// E18/E19 set tier, the E20 catalog-dispatch sweep, the E21 scenario
// suite, the E22 crash suite, the E23 adaptive suite, and the E24
// soak suite) and prints the tables EXPERIMENTS.md quotes.
//
// Usage:
//
//	contbench [-run E1,E5,...|all] [-list] [-procs N] [-duration D] [-seed S] [-quick] [-json path]
//
// -list prints the experiment registry — id, name, the one-line
// paper claim each experiment reproduces, and (for the gated suites)
// the cmd/slogate invocation that applies the release gates to the
// experiment's -json rows — and exits. Each executed
// experiment prints its paper claim followed by the measured table; a
// non-zero exit status means a correctness experiment
// (E1/E2/E3/E8/E11/E12/E13/E14/E17/E18/E19/E21) observed a violation.
// With -json, the same result rows are additionally written to the
// given path as a provenance-stamped machine-readable document
// (bench.Doc: go version, host shape, git sha, seed — the schema of
// the committed BENCH_*.json perf-trajectory files and the input of
// cmd/slogate), whatever the exit status.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiment ids (e.g. E1,E5) or 'all'")
		procs    = flag.Int("procs", 0, "max process count for scaling experiments (0 = auto)")
		duration = flag.Duration("duration", 0, "measuring window per data point (0 = default)")
		seed     = flag.Uint64("seed", 0, "workload seed (0 = default)")
		quick    = flag.Bool("quick", false, "shrink all budgets (smoke test)")
		list     = flag.Bool("list", false, "print the experiment registry (id, name, claim) and exit")
		jsonPath = flag.String("json", "", "also write result rows as JSON to this path")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
			if e.Gate != "" {
				fmt.Printf("     gate:  %s (on -json output)\n", e.Gate)
			}
		}
		return
	}

	cfg := bench.Config{
		Procs:    *procs,
		Duration: *duration,
		Quick:    *quick,
		Seed:     *seed,
	}
	var log *bench.ResultLog
	if *jsonPath != "" {
		log = &bench.ResultLog{}
		cfg.Log = log
	}

	var selected []bench.Experiment
	if *run == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "contbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		fmt.Printf("paper claim: %s\n\n", e.Claim)
		if log != nil {
			log.Begin(e)
		}
		start := time.Now()
		err := e.Run(cfg, os.Stdout)
		elapsed := time.Since(start)
		if log != nil {
			log.End(err, float64(elapsed.Microseconds())/1000)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "\n%s FAILED: %v\n", e.ID, err)
			failed++
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
	}
	if log != nil {
		if err := writeJSON(*jsonPath, cfg, failed, log); err != nil {
			fmt.Fprintf(os.Stderr, "contbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(2)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "contbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

// writeJSON dumps the structured results as a provenance-stamped
// bench.Doc (the schema the BENCH_*.json trajectory and cmd/slogate
// consume). The effective (defaulted) duration is not visible here
// for experiments that apply their own defaults, so the configured
// value is recorded as given (0 = default).
func writeJSON(path string, cfg bench.Config, failed int, log *bench.ResultLog) error {
	doc := bench.Doc{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Provenance: bench.CollectProvenance(),
		Procs:      cfg.Procs,
		DurationMS: float64(cfg.Duration.Microseconds()) / 1000,
		Quick:      cfg.Quick,
		Seed:       cfg.Seed,
		Failed:     failed,
		Experiment: log.Results(),
	}
	return doc.WriteFile(path)
}
