// Command contbench runs the reproduction experiments (E1..E18,
// including the E15/E16 scaling tier, the E17 allocation tier, and the
// E18 set tier) and prints the tables EXPERIMENTS.md quotes.
//
// Usage:
//
//	contbench [-run E1,E5,...|all] [-procs N] [-duration D] [-seed S] [-quick]
//
// Each experiment prints its paper claim followed by the measured
// table; a non-zero exit status means a correctness experiment
// (E1/E2/E3/E8/E11/E12/E13/E14/E17/E18) observed a violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiment ids (e.g. E1,E5) or 'all'")
		procs    = flag.Int("procs", 0, "max process count for scaling experiments (0 = auto)")
		duration = flag.Duration("duration", 0, "measuring window per data point (0 = default)")
		seed     = flag.Uint64("seed", 0, "workload seed (0 = default)")
		quick    = flag.Bool("quick", false, "shrink all budgets (smoke test)")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := bench.Config{
		Procs:    *procs,
		Duration: *duration,
		Quick:    *quick,
		Seed:     *seed,
	}

	var selected []bench.Experiment
	if *run == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "contbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		fmt.Printf("paper claim: %s\n\n", e.Claim)
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "\n%s FAILED: %v\n", e.ID, err)
			failed++
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "contbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
