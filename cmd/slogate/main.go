// Command slogate is the release gate over the scenario suites: it
// loads a contbench -json document (the bench.Doc schema), finds the
// experiment's scenario table — "E21 scenario suite" rows gated by
// SLO/variance (internal/scenario.Evaluate), "E22 crash suite" rows
// gated by survivor progress, recovery latency, the conservation
// bracket, and the Robustness classification (scenario.EvaluateCrash),
// "E23 adaptive suite" per-phase rows gated by within-slack against
// the best fixed rung, migration sanity, and conservation
// (scenario.EvaluateAdaptive), or "E24 soak suite" windowed rows
// gated by the strict soak contract — watchdog silence, live and
// drain audits, fault recovery, bounded heap/pool drift, coverage
// (internal/soak.Evaluate) — and prints a deterministic per-gate
// verdict table. Exit status 1 means at least one gate failed — CI
// runs it after the E21/E22/E23/E24 smokes so a latency regression, a
// throughput flap, a conservation violation, a stalled survivor, a
// wedged takeover, a frozen (or thrashing) adaptive ladder, a leaking
// soak, or a silently dropped scenario cell fails the build.
//
// Usage:
//
//	slogate [-exp E21|E22|E23|E24] [-all] BENCH_E21.json
//
// -all prints every verdict row; by default passing gates are
// summarized per scenario and only failures are expanded.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/soak"
)

func main() {
	var (
		exp     = flag.String("exp", "E21", "experiment id whose scenario table is gated")
		showAll = flag.Bool("all", false, "print every verdict row, not just failures and summaries")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: slogate [-exp E21] [-all] <contbench-json>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *exp, *showAll, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "slogate: %v\n", err)
		os.Exit(1)
	}
}

func run(path, exp string, showAll bool, w *os.File) error {
	doc, err := bench.ReadDoc(path)
	if err != nil {
		return err
	}
	rec, ok := doc.FindExperiment(exp)
	if !ok {
		return fmt.Errorf("%s: document has no %s record (ran `contbench -run %s -json`?)", path, exp, exp)
	}
	var verdicts []scenario.Verdict
	var nrows int
	if table, ok := rec.FindTable(exp + " scenario suite"); ok {
		rows, err := scenario.ParseRows(table.Headers, table.Rows)
		if err != nil {
			return err
		}
		nrows, verdicts = len(rows), scenario.Evaluate(rows)
	} else if table, ok := rec.FindTable(exp + " crash suite"); ok {
		rows, err := scenario.ParseCrashRows(table.Headers, table.Rows)
		if err != nil {
			return err
		}
		nrows, verdicts = len(rows), scenario.EvaluateCrash(rows)
	} else if table, ok := rec.FindTable(exp + " adaptive suite"); ok {
		rows, err := scenario.ParseAdaptiveRows(table.Headers, table.Rows)
		if err != nil {
			return err
		}
		nrows, verdicts = len(rows), scenario.EvaluateAdaptive(rows, doc.Provenance.NumCPU)
	} else if table, ok := rec.FindTable(exp + " soak suite"); ok {
		rows, err := soak.ParseRows(table.Headers, table.Rows)
		if err != nil {
			return err
		}
		// The release gate always applies the strict full-run contract;
		// interrupted runs are judged (non-strict) by cmd/soak itself.
		nrows, verdicts = len(rows), soak.Evaluate(rows, true)
	} else {
		return fmt.Errorf("%s: %s record carries no scenario, crash, adaptive, or soak table", path, exp)
	}

	fmt.Fprintf(w, "slogate: %d rows from %s (%s, go %s, %s/%s, %d cpu, sha %s)\n",
		nrows, path, doc.Generated, doc.Provenance.GoVersion,
		doc.Provenance.OS, doc.Provenance.Arch, doc.Provenance.NumCPU, doc.Provenance.GitSHA)

	failed := 0
	tb := metrics.NewTable("scenario", "backend", "gate", "observed", "bound", "verdict")
	for _, v := range verdicts {
		if !v.OK {
			failed++
		}
		if showAll || !v.OK || v.Backend == "*" {
			verdict := "pass"
			if !v.OK {
				verdict = "FAIL"
			}
			tb.AddRow(v.Scenario, v.Backend, v.Gate, v.Observed, v.Bound, verdict)
		}
	}
	fmt.Fprint(w, tb.String())
	if failed > 0 {
		return fmt.Errorf("%d of %d gates failed", failed, len(verdicts))
	}
	fmt.Fprintf(w, "all %d gates passed\n", len(verdicts))
	return nil
}
