// Command modelcheck drives the deterministic scheduler over the weak
// stack/queue/set implementations: exhaustive interleaving enumeration
// for small configurations, random schedule sampling for larger ones,
// and the deterministic ABA reproductions of §2.2 (register, pooled,
// and recycled-list-node variants).
//
// Usage:
//
//	modelcheck -mode exhaustive -target stack-pushpop
//	modelcheck -mode walk -target naive-aba -runs 20000
//	modelcheck -mode aba
//
// Exit status 1 means a violation was found on a target that is
// supposed to be correct (tagged model-checker backends — these are
// internal/sched's deterministic instrumented variants, distinct from
// the public repro.Catalog() surface that cmd/lincheck and the
// lockstep fuzzers enumerate); the naive targets are
// *expected* to fail and report success when they do.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sched"
)

// target is a named model-checking configuration.
type target struct {
	name        string
	description string
	build       sched.Builder
	expectFail  bool
}

func targets() []target {
	return []target{
		{
			name:        "stack-pushpop",
			description: "boxed stack: push vs pop, one op each",
			build: sched.WeakStackBuilder(sched.Boxed, 2, []uint64{7},
				[][]sched.StackOp{{{Push: true, Value: 9}}, {{Push: false}}}),
		},
		{
			name:        "stack-pushpop-packed",
			description: "packed stack: push vs pop, one op each",
			build: sched.WeakStackBuilder(sched.PackedWords, 2, []uint64{7},
				[][]sched.StackOp{{{Push: true, Value: 9}}, {{Push: false}}}),
		},
		{
			name:        "stack-popper-race",
			description: "boxed stack: two racing pops over [1 2]",
			build: sched.WeakStackBuilder(sched.Boxed, 2, []uint64{1, 2},
				[][]sched.StackOp{{{Push: false}}, {{Push: false}}}),
		},
		{
			name:        "stack-3way",
			description: "boxed stack: push vs push vs pop (larger tree; use -mode walk)",
			build: sched.WeakStackBuilder(sched.Boxed, 3, []uint64{1},
				[][]sched.StackOp{
					{{Push: true, Value: 2}},
					{{Push: true, Value: 3}},
					{{Push: false}},
				}),
		},
		{
			name:        "queue-enqdeq",
			description: "abortable queue: enqueue vs dequeue, capacity 1",
			build: sched.WeakQueueBuilder(1, nil,
				[][]sched.QueueOp{{{Enq: true, Value: 9}}, {{Enq: false}}}),
		},
		{
			name:        "queue-enqenq",
			description: "abortable queue: two racing enqueues on the last slot",
			build: sched.WeakQueueBuilder(1, nil,
				[][]sched.QueueOp{{{Enq: true, Value: 1}}, {{Enq: true, Value: 2}}}),
		},
		{
			name:        "deque-opposite-ends",
			description: "HLM deque: pushr vs popl over one element",
			build: sched.WeakDequeBuilder(4, []uint64{7},
				[][]sched.DequeOp{{{Kind: "pushr", Value: 9}}, {{Kind: "popl"}}}),
		},
		{
			name:        "deque-singleton-races",
			description: "HLM deque: popl vs popr over a single element (the hot spot)",
			build: sched.WeakDequeBuilder(4, []uint64{42},
				[][]sched.DequeOp{{{Kind: "popl"}}, {{Kind: "popr"}}}),
		},
		{
			name:        "naive-aba",
			description: "untagged stack under the pop vs pop,pop,push,push race (EXPECTED to fail)",
			build: sched.WeakStackBuilder(sched.NaiveABA, 4, []uint64{10, 20},
				[][]sched.StackOp{
					{{Push: false}},
					{{Push: false}, {Push: false}, {Push: true, Value: 30}, {Push: true, Value: 40}},
				}),
			expectFail: true,
		},
		{
			name:        "set-add-remove",
			description: "COW abortable set: add vs remove over overlapping keys",
			build: sched.WeakSetBuilder(sched.CowSet, []uint64{10},
				[][]sched.SetOp{{{Kind: "add", Key: 20}}, {{Kind: "rem", Key: 10}}}),
		},
		{
			name:        "harris-window-race",
			description: "lock-free list: racing add and remove in one window",
			build: sched.WeakSetBuilder(sched.HarrisSet, []uint64{10, 20},
				[][]sched.SetOp{{{Kind: "add", Key: 15}}, {{Kind: "rem", Key: 10}}}),
		},
		{
			name:        "hash-split-race",
			description: "split-ordered hash: racing bucket splits and a remove",
			build: sched.WeakSetBuilder(sched.HashSet, []uint64{4, 6},
				[][]sched.SetOp{{{Kind: "add", Key: 1}}, {{Kind: "rem", Key: 6}, {Kind: "add", Key: 3}}}),
		},
	}
}

func main() {
	var (
		mode   = flag.String("mode", "exhaustive", "exhaustive | walk | aba")
		name   = flag.String("target", "stack-pushpop", "target name (see -list)")
		runs   = flag.Int("runs", 10000, "random schedules in walk mode")
		seed   = flag.Uint64("seed", 1, "walk seed")
		maxSch = flag.Int("maxschedules", 2_000_000, "exhaustive-mode schedule budget")
		listT  = flag.Bool("list", false, "list targets and exit")
	)
	flag.Parse()

	if *listT {
		for _, t := range targets() {
			fmt.Printf("%-22s %s\n", t.name, t.description)
		}
		return
	}

	if *mode == "aba" {
		runABA()
		return
	}

	var tgt *target
	for _, t := range targets() {
		if t.name == *name {
			tgt = &t
			break
		}
	}
	if tgt == nil {
		fmt.Fprintf(os.Stderr, "modelcheck: unknown target %q (use -list)\n", *name)
		os.Exit(2)
	}

	var rep sched.Report
	switch *mode {
	case "exhaustive":
		rep = sched.Explore(tgt.build, sched.Options{MaxSchedules: *maxSch})
	case "walk":
		rep = sched.Walk(tgt.build, *runs, *seed, sched.Options{})
	default:
		fmt.Fprintf(os.Stderr, "modelcheck: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	fmt.Printf("target:    %s (%s)\n", tgt.name, tgt.description)
	fmt.Printf("mode:      %s\n", *mode)
	fmt.Printf("schedules: %d (complete tree: %v)\n", rep.Schedules, rep.Complete)
	if rep.Failure == nil {
		fmt.Println("result:    no violation found")
		if tgt.expectFail {
			fmt.Println("note:      this target is expected to fail; increase -runs")
			os.Exit(1)
		}
		return
	}
	fmt.Printf("result:    VIOLATION\n  error:    %v\n  schedule: %v\n  trace:\n", rep.Failure.Err, rep.Failure.Schedule)
	for i, st := range rep.Failure.Trace {
		fmt.Printf("    %3d: p%d %s\n", i, st.Pid, st.Access)
	}
	if tgt.expectFail {
		fmt.Println("verdict:   expected failure reproduced (the §2.2 ABA problem)")
		return
	}
	os.Exit(1)
}

// runABA replays the handcrafted §2.2 interleaving on the register
// backends, then the forced-recycle schedules on the pooled backends
// where a retired node is back at the register when the stale CAS
// fires (experiment E8's deterministic half).
func runABA() {
	for _, backend := range []sched.StackBackend{sched.NaiveABA, sched.Boxed, sched.PackedWords} {
		build, schedule := sched.ABASchedule(backend)
		trace, err := sched.Replay(build, schedule, 0)
		fmt.Printf("backend %-16s: ", backend)
		if err != nil {
			fmt.Printf("CORRUPTED — %v\n", err)
		} else {
			fmt.Printf("survived the ABA interleaving (%d scheduled accesses)\n", len(trace))
		}
		if backend == sched.NaiveABA && err == nil {
			fmt.Fprintln(os.Stderr, "modelcheck: the naive stack unexpectedly survived")
			os.Exit(1)
		}
		if backend != sched.NaiveABA && err != nil {
			fmt.Fprintln(os.Stderr, "modelcheck: a tagged backend was corrupted")
			os.Exit(1)
		}
	}
	for _, tc := range []struct {
		name  string
		sched func() (sched.Builder, []int)
	}{
		{"pooled-treiber", sched.PooledTreiberABASchedule},
		{"pooled-ms-queue", sched.PooledMSABASchedule},
		{"harris-set", sched.HarrisABASchedule},
		{"hash-set-split", sched.HashSplitABASchedule},
	} {
		build, schedule := tc.sched()
		trace, err := sched.Replay(build, schedule, 0)
		fmt.Printf("backend %-16s: ", tc.name)
		if err != nil {
			fmt.Printf("CORRUPTED — %v\n", err)
			fmt.Fprintln(os.Stderr, "modelcheck: a pooled backend was corrupted by recycling")
			os.Exit(1)
		}
		fmt.Printf("survived forced node recycling (%d scheduled accesses)\n", len(trace))
	}
	fmt.Println("verdict: sequence tags (§2.2) are necessary and sufficient on these schedules")
}
