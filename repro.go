// Package repro is the public API of the contention-sensitive
// concurrent-objects library, a reproduction of Mostefaoui & Raynal,
// "Looking for Efficient Implementations of Concurrent Objects"
// (IRISA PI-1969 / PACT 2011).
//
// The headline types are re-exported from the internal packages:
//
//   - Stack / Queue — the paper's Figure 3 objects: linearizable,
//     starvation-free, and contention-sensitive (a contention-free
//     operation takes six shared-memory accesses and no lock).
//   - AbortableStack / AbortableQueue — the Figure 1 weak objects:
//     single attempts that may return ErrStackAborted/ErrQueueAborted
//     under interference, with no effect.
//   - NonBlockingStack / NonBlockingQueue — the Figure 2 retry
//     constructions.
//   - Guard / Do — the generic contention-sensitive protocol, for
//     building the same tower over any abortable object.
//   - NewStarvationFreeLock — the §4.4 transformation of a
//     deadlock-free lock into a starvation-free one.
//   - CombiningStack / CombiningQueue — the scaling tier: the same
//     interface and lock-free fast path, with the contended path
//     batched by flat combining (one combiner serves every published
//     request per lock acquisition) instead of serializing processes
//     through the fallback lock one at a time.
//   - ShardedQueue — pid-striping over K flat-combining sub-queues
//     with owner-first, steal-on-empty dequeue; per-shard FIFO,
//     relaxed global order, maximal parallelism.
//   - PooledStack / PooledQueue — the allocation tier: Treiber and
//     Michael-Scott over recycled pooled nodes with §2.2 sequence
//     tags, 0 steady-state allocs/op (experiment E17; see DESIGN.md's
//     memory-reclamation section).
//   - Set / AbortableSet / NonBlockingSet / LockFreeSet /
//     CombiningSet — the set tier: a sorted list-based set carried
//     through the same ladder, opening the read-mostly membership
//     workload (experiment E18). Contains is wait-free on the
//     copy-on-write backends; LockFreeSet is the Harris/Michael list
//     over recycled tagged nodes.
//   - HashSet — the split-ordered (Shalev-Shavit) hash layer over the
//     same pooled lock-free list: O(1) expected Add/Remove/Contains
//     whatever the key range, with CAS-published table doubling and
//     per-bucket sentinel shortcuts (experiment E19). Keys must be
//     < 2^63 (one reserved bit).
//
// Strong operations take a pid in [0, n): the paper's model of n
// known asynchronous processes. Give each goroutine that touches one
// object a distinct pid.
//
// # One catalog, one contract
//
// The paper's point is a ladder of implementations of the same object
// type, distinguished only by capabilities — and the API says so.
// Every backend above also sits behind one capability-typed contract
// per object kind (StackAPI, QueueAPI, DequeAPI, SetAPI; see api.go)
// and is described by a machine-readable catalog entry:
//
//	for _, b := range repro.Catalog() { ... }        // name, kind, tier,
//	                                                 // progress, allocation,
//	                                                 // experiments, constructors
//	s, err := repro.NewStackBackend[int]("sensitive",
//	    repro.WithCapacity(1024), repro.WithProcs(8))
//
// The options constructors (NewStackBackend, NewQueueBackend,
// NewDequeBackend, NewSetBackend) resolve any catalog name —
// WithPooled redirects to a backend's pooled sibling — and the
// harnesses (internal/bench, cmd/lincheck, the lockstep fuzzers)
// enumerate the catalog instead of keeping backend lists of their
// own. Experiment E20 pins the unified dispatch cost at a few
// percent of direct method calls. The concrete-type constructors
// below predate the catalog and remain the right choice when you
// want the concrete type and its extensions directly; repro.Unwrap
// reaches those extensions from behind the interfaces.
//
// See README.md for a quickstart and the catalog table, DESIGN.md for
// the system inventory, and EXPERIMENTS.md for the reproduction
// results; cmd/contbench regenerates every table.
package repro

import (
	"repro/internal/adaptive"
	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/deque"
	"repro/internal/lock"
	"repro/internal/memory"
	"repro/internal/queue"
	"repro/internal/set"
	"repro/internal/stack"
)

// Stack is the contention-sensitive, starvation-free bounded stack
// (Figure 3). Use NewStack.
type Stack[T any] = stack.Sensitive[T]

// AbortableStack is the weak bounded stack (Figure 1). Use
// NewAbortableStack.
type AbortableStack[T any] = stack.Abortable[T]

// NonBlockingStack is the retry-until-success stack (Figure 2). Use
// NewNonBlockingStack.
type NonBlockingStack[T any] = stack.NonBlocking[T]

// TreiberStack is the classic unbounded lock-free stack baseline.
type TreiberStack[T any] = stack.Treiber[T]

// Queue is the contention-sensitive, starvation-free bounded FIFO
// queue. Use NewQueue.
type Queue[T any] = queue.Sensitive[T]

// AbortableQueue is the weak bounded queue. Use NewAbortableQueue.
type AbortableQueue[T any] = queue.Abortable[T]

// NonBlockingQueue is the retry-until-success queue.
type NonBlockingQueue[T any] = queue.NonBlocking[T]

// Guard carries the Figure 3 protocol state for one object; see Do.
type Guard = core.Guard

// Progress is the paper's liveness hierarchy (obstruction-free <
// non-blocking < starvation-free < wait-free).
type Progress = core.Progress

// Lock is an identity-oblivious mutual-exclusion lock.
type Lock = lock.Lock

// PidLock is a mutual-exclusion lock taking the caller's process
// identity.
type PidLock = lock.PidLock

// Progress levels, re-exported from internal/core.
const (
	ObstructionFree = core.ObstructionFree
	NonBlocking     = core.NonBlocking
	StarvationFree  = core.StarvationFree
	WaitFree        = core.WaitFree
)

// Sentinel results, re-exported from the internal packages.
var (
	ErrStackFull    = stack.ErrFull
	ErrStackEmpty   = stack.ErrEmpty
	ErrStackAborted = stack.ErrAborted
	ErrQueueFull    = queue.ErrFull
	ErrQueueEmpty   = queue.ErrEmpty
	ErrQueueAborted = queue.ErrAborted
)

// ErrExhausted reports a WithRetryPolicy budget spent without the
// operation taking effect: every weak attempt aborted, and the
// operation degraded gracefully (shed, no effect) instead of retrying
// unboundedly. Re-exported from internal/core.
var ErrExhausted = core.ErrExhausted

// NewStack returns a contention-sensitive, starvation-free stack of
// capacity k for n processes — the paper's exact Figure 3
// configuration (abortable stack + round-robin over a test-and-set
// lock).
func NewStack[T any](k, n int) *Stack[T] { return stack.NewSensitive[T](k, n) }

// NewAbortableStack returns the Figure 1 weak stack of capacity k.
func NewAbortableStack[T any](k int) *AbortableStack[T] { return stack.NewAbortable[T](k) }

// NewNonBlockingStack returns the Figure 2 stack of capacity k.
func NewNonBlockingStack[T any](k int) *NonBlockingStack[T] { return stack.NewNonBlocking[T](k) }

// NewTreiberStack returns an empty unbounded lock-free stack.
func NewTreiberStack[T any]() *TreiberStack[T] { return stack.NewTreiber[T]() }

// EliminationStack is an unbounded lock-free stack with an
// elimination-backoff array: concurrent push/pop pairs can serve each
// other without touching the stack (see internal/stack).
type EliminationStack[T any] = stack.Elimination[T]

// NewEliminationStack returns an elimination stack with `width`
// exchange slots (0 for the default).
func NewEliminationStack[T any](width int) *EliminationStack[T] {
	return stack.NewElimination[T](width)
}

// NewQueue returns a contention-sensitive, starvation-free FIFO queue
// of capacity k for n processes.
func NewQueue[T any](k, n int) *Queue[T] { return queue.NewSensitive[T](k, n) }

// NewAbortableQueue returns the weak FIFO queue of capacity k.
func NewAbortableQueue[T any](k int) *AbortableQueue[T] { return queue.NewAbortable[T](k) }

// NewNonBlockingQueue returns the retrying FIFO queue of capacity k.
func NewNonBlockingQueue[T any](k int) *NonBlockingQueue[T] { return queue.NewNonBlocking[T](k) }

// CombiningStack is the flat-combining stack: Stack's interface and
// lock-free fast path with the contended path batched (see
// internal/combine). Use NewCombiningStack.
type CombiningStack[T any] = stack.Combining[T]

// CombiningQueue is the flat-combining FIFO queue. Use
// NewCombiningQueue.
type CombiningQueue[T any] = queue.Combining[T]

// ShardedQueue is the pid-striped queue: K flat-combining shards with
// owner-first, steal-on-empty dequeue. Each shard is FIFO and
// linearizable; K > 1 relaxes the global order (values that spread
// across shards — different home shards, a spill on full — may be
// dequeued out of enqueue order) while every value is still dequeued
// exactly once. Use NewShardedQueue.
type ShardedQueue[T any] = queue.Sharded[T]

// CombiningStats is a snapshot of a combining object's path and
// batching counters (fast-path share, batch sizes, retries).
type CombiningStats = combine.Stats

// NewCombiningStack returns a flat-combining stack of capacity k for
// n processes.
func NewCombiningStack[T any](k, n int) *CombiningStack[T] { return stack.NewCombining[T](k, n) }

// NewCombiningQueue returns a flat-combining FIFO queue of capacity k
// for n processes.
func NewCombiningQueue[T any](k, n int) *CombiningQueue[T] { return queue.NewCombining[T](k, n) }

// NewShardedQueue returns a queue of total capacity k for n
// processes, pid-striped over the given number of shards (0 picks
// min(n, 8)).
func NewShardedQueue[T any](k, n, shards int) *ShardedQueue[T] {
	return queue.NewSharded[T](k, n, shards)
}

// PooledStack is the unbounded lock-free Treiber stack over recycled
// pooled nodes: zero steady-state allocations per operation, with the
// §2.2 sequence tags (CASed together with the node handle) making the
// recycling ABA-safe. Values are uint64; operations take the calling
// pid. Use NewPooledStack.
type PooledStack = stack.TreiberPooled

// PooledQueue is the unbounded lock-free Michael-Scott queue over
// recycled pooled nodes (the original paper's free-list discipline,
// counted pointers included). Values are uint64; operations take the
// calling pid. Use NewPooledQueue.
type PooledQueue = queue.MichaelScottPooled

// PoolStats is a snapshot of a pooled structure's recycling counters.
type PoolStats = memory.PoolStats

// NewPooledStack returns an empty pooled Treiber stack for n processes
// (pids in [0, n)).
func NewPooledStack(n int) *PooledStack { return stack.NewTreiberPooled(n) }

// NewPooledQueue returns an empty pooled Michael-Scott queue for n
// processes (pids in [0, n)).
func NewPooledQueue(n int) *PooledQueue { return queue.NewMichaelScottPooled(n) }

// NewCombiningPooledStack returns a flat-combining stack of capacity k
// for n processes whose entire strong path — fast path, publication,
// combiner service — runs allocation-free over the pooled Figure 1
// backend.
func NewCombiningPooledStack(k, n int) *CombiningStack[uint64] {
	return stack.NewCombiningPooled(k, n)
}

// NewCombiningPooledQueue is NewCombiningPooledStack's FIFO sibling
// over the in-place ring backend.
func NewCombiningPooledQueue(k, n int) *CombiningQueue[uint64] {
	return queue.NewCombiningPooled(k, n)
}

// Deque is the contention-sensitive, starvation-free double-ended
// queue built over the Herlihy-Luchangco-Moir obstruction-free array
// deque (the paper's reference [8]). Values are uint32; the array is
// non-circular, so each side reports full when its own sentinel
// supply is exhausted (see internal/deque).
type Deque = deque.Sensitive

// AbortableDeque is the weak HLM deque: single attempts that may
// return ErrDequeAborted.
type AbortableDeque = deque.Abortable

// NonBlockingDeque is the Figure 2 retry construction over the weak
// deque.
type NonBlockingDeque = deque.NonBlocking

// Deque sentinel results.
var (
	ErrDequeFull    = deque.ErrFull
	ErrDequeEmpty   = deque.ErrEmpty
	ErrDequeAborted = deque.ErrAborted
)

// NewDeque returns a contention-sensitive, starvation-free deque of
// capacity k for n processes.
func NewDeque(k, n int) *Deque { return deque.NewSensitive(k, n) }

// NewAbortableDeque returns the weak HLM deque of capacity k.
func NewAbortableDeque(k int) *AbortableDeque { return deque.NewAbortable(k) }

// NewNonBlockingDeque returns the retrying deque of capacity k.
func NewNonBlockingDeque(k int) *NonBlockingDeque { return deque.NewNonBlocking(k) }

// Set is the contention-sensitive, starvation-free sorted set: the
// Figure 3 construction over the abortable copy-on-write list.
// Updates are starvation-free; Contains is wait-free (one shared read
// plus a walk of immutable private memory) and bypasses the guard.
// Keys are uint64 throughout the set tier. Use NewSet.
type Set = set.Sensitive

// AbortableSet is the weak sorted set: single attempts that may
// return ErrSetAborted with no effect. TryContains never aborts. Use
// NewAbortableSet.
type AbortableSet = set.Abortable

// NonBlockingSet is the Figure 2 retry construction over the weak
// set. Use NewNonBlockingSet.
type NonBlockingSet = set.NonBlocking

// LockFreeSet is the Harris/Michael lock-free linked-list set over
// pooled, recycled nodes with tagged markable next registers: disjoint
// windows update in parallel, and the §2.2 sequence tags keep node
// recycling ABA-safe (see DESIGN.md's set-tier section). Use
// NewLockFreeSet.
type LockFreeSet = set.Harris

// CombiningSet is the flat-combining set: the same interface with the
// contended path batched by one combiner per lock acquisition. Use
// NewCombiningSet.
type CombiningSet = set.Combining

// HashSet is the split-ordered hash set: the same pooled Harris list
// as LockFreeSet behind a lazily split, CAS-doubled bucket index, so
// operations touch O(1) expected nodes instead of walking the whole
// sorted prefix. Lock-free; keys must be < 2^63 (one bit is reserved
// to keep bucket sentinels and regular keys apart in split order).
// Use NewHashSet.
type HashSet = set.Hash

// ErrSetAborted is the set tier's ⊥: the weak attempt detected
// interference and had no effect.
var ErrSetAborted = set.ErrAborted

// NewSet returns a contention-sensitive, starvation-free sorted set
// for n processes (pids in [0, n)).
func NewSet(n int) *Set { return set.NewSensitive(n) }

// NewAbortableSet returns the weak copy-on-write sorted set.
func NewAbortableSet() *AbortableSet { return set.NewAbortable() }

// NewNonBlockingSet returns the retrying sorted set.
func NewNonBlockingSet() *NonBlockingSet { return set.NewNonBlocking() }

// NewLockFreeSet returns the Harris/Michael lock-free list-based set
// for n processes (pids in [0, n)).
func NewLockFreeSet(n int) *LockFreeSet { return set.NewHarris(n) }

// NewCombiningSet returns a flat-combining sorted set for n processes.
func NewCombiningSet(n int) *CombiningSet { return set.NewCombining(n) }

// NewHashSet returns the split-ordered hash set for n processes (pids
// in [0, n)).
func NewHashSet(n int) *HashSet { return set.NewHash(n) }

// AdaptiveStack is the contention-adaptive stack: one LIFO contract
// served by a ladder of catalog rungs (sensitive ⇄ flat combining)
// that the object morphs between as live contention signals — the
// guard's slow-path counter, the combiner's publication counter, and
// the set of active pids per decision window — cross the Thresholds
// boundaries. Morphs use an epoch-gated dual-structure handoff that
// preserves the LIFO state and linearizability mid-flight (see
// internal/adaptive and DESIGN.md §9). Use NewAdaptiveStack.
type AdaptiveStack[T any] = adaptive.Stack[T]

// AdaptiveQueue is the FIFO sibling of AdaptiveStack, with a
// three-rung ladder: sensitive ⇄ flat combining ⇄ pid-striped shards.
// The top rung relaxes cross-shard FIFO order exactly as ShardedQueue
// documents; descending restores strict FIFO. Use NewAdaptiveQueue.
type AdaptiveQueue[T any] = adaptive.Queue[T]

// AdaptiveSet is the contention-adaptive sorted set: copy-on-write
// while small and calm, the Harris/Michael list once size or abort
// rate says the single COW root is the bottleneck, the split-ordered
// hash layer once the sorted walk dominates. Keys must be < 2^63 (the
// hash rung's reserved bit). Use NewAdaptiveSet.
type AdaptiveSet = adaptive.Set

// Thresholds parameterizes when an adaptive backend migrates between
// rungs; see DefaultThresholds and ForcingThresholds.
type Thresholds = adaptive.Thresholds

// AdaptiveStats is a snapshot of an adaptive backend's migration
// history: completed and aborted migrations, the current rung, and
// wall-clock time-in-regime per rung.
type AdaptiveStats = adaptive.Stats

// DefaultThresholds returns the adaptation thresholds seeded from the
// measured crossover points (E15, E16, E18/E19).
func DefaultThresholds() Thresholds { return adaptive.DefaultThresholds() }

// ForcingThresholds returns thresholds that migrate on every decision
// window — the harness configuration that forces the epoch-gated
// handoff onto every tested path.
func ForcingThresholds() Thresholds { return adaptive.ForcingThresholds() }

// NewAdaptiveStack returns a contention-adaptive stack of capacity k
// for n processes under DefaultThresholds.
func NewAdaptiveStack[T any](k, n int) *AdaptiveStack[T] {
	return adaptive.NewStack[T](k, n, adaptive.DefaultThresholds())
}

// NewAdaptiveQueue returns a contention-adaptive queue of capacity k
// for n processes under DefaultThresholds (shards as NewShardedQueue).
func NewAdaptiveQueue[T any](k, n, shards int) *AdaptiveQueue[T] {
	return adaptive.NewQueue[T](k, n, shards, adaptive.DefaultThresholds())
}

// NewAdaptiveSet returns a contention-adaptive sorted set for n
// processes under DefaultThresholds.
func NewAdaptiveSet(n int) *AdaptiveSet { return adaptive.NewSet(n, adaptive.DefaultThresholds()) }

// AdaptiveStatsOf walks the adapter layers of a catalog-built object
// one Unwrap hop at a time and returns the first adaptive backend's
// migration stats; ok is false when no layer is adaptive.
func AdaptiveStatsOf(x any) (AdaptiveStats, bool) {
	for {
		if a, ok := x.(interface{ Stats() adaptive.Stats }); ok {
			return a.Stats(), true
		}
		u, ok := x.(Unwrapper)
		if !ok {
			return AdaptiveStats{}, false
		}
		x = u.Unwrap()
	}
}

// NewGuard returns the Figure 3 protocol state over the given lock;
// combine with Do to make any abortable operation contention-sensitive
// and starvation-free.
func NewGuard(lk PidLock) *Guard { return core.NewGuard(lk) }

// Do runs one strong operation of an abortable object under g: the
// lock-free shortcut when uncontended, the serialized slow path
// otherwise. try makes a single attempt and reports ok=false for ⊥.
func Do[R any](g *Guard, pid int, try func() (R, bool)) R { return core.Do(g, pid, try) }

// NewStarvationFreeLock wraps the deadlock-free inner lock with the
// §4.4 FLAG/TURN round-robin, yielding a starvation-free lock for n
// processes.
func NewStarvationFreeLock(inner Lock, n int) PidLock { return lock.NewRoundRobin(inner, n) }

// NewTASLock returns the minimal deadlock-free test-and-set spin lock,
// the paper's baseline assumption for the slow path.
func NewTASLock() Lock { return lock.NewTAS() }

// NewTicketLock returns a starvation-free FIFO ticket lock.
func NewTicketLock() Lock { return lock.NewTicket() }
